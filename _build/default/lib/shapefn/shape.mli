(** Shapes: one realizable placement of a module group.

    A shape is a bounding box [(w, h)] plus the data needed to rebuild
    the placement it stands for:

    - {b RSF} shapes (regular shape functions, Otten, survey ref [23])
      carry the finished sub-placement as a rigid box — additions only
      ever abut bounding boxes;
    - {b ESF} shapes (enhanced shape functions, survey §IV, ref [25])
      carry the B*-tree and the chosen cell dimensions, so additions
      can merge trees and let the packings interleave (Fig. 7).

    Rigid blocks (symmetry islands, common-centroid patterns) appear
    inside ESF trees as pseudo-cells with attached sub-placements. *)

type payload =
  | Boxes of Geometry.Transform.placed list
      (** a rigid placement with origin (0,0) *)
  | Btree of {
      tree : Bstar.Tree.t;
      dims : (int * (int * int)) list;
          (** oriented dimensions per tree cell (real or pseudo) *)
      rigid : (int * Geometry.Transform.placed list) list;
          (** pseudo-cell id -> its internal placement *)
    }

type t = { w : int; h : int; payload : payload }

val area : t -> int

val of_module : cell:int -> w:int -> h:int -> rotated:bool -> t
(** Single-module shape ([Btree] with one node); [rotated] swaps the
    stored dimensions. *)

val of_rigid : Geometry.Transform.placed list -> t
(** RSF-style rigid shape of a finished placement (normalized to the
    origin). *)

val realize : t -> Geometry.Transform.placed list
(** Rebuild the concrete placement: pack the B*-tree (if any) and
    splice rigid blocks. Module placements only — pseudo-cells are
    expanded. *)

val dominates : t -> t -> bool
(** [dominates a b]: a is no larger in either dimension (so [b] is
    redundant in a shape function if [a] is present and [a <> b]). *)

val pp : Format.formatter -> t -> unit
