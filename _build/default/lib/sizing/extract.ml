let wire_cap_per_um = 0.2e-15

let extract (d : Design.t) (inst : Template.instance) =
  (* net lengths are reported in um; wire_cap_per_um is F per um *)
  let wire net =
    match List.assoc_opt net inst.Template.net_length_um with
    | Some len -> len *. wire_cap_per_um
    | None -> 0.0
  in
  let cdb_n g = Mos.drain_junction Mos.nmos g in
  let cdb_p g = Mos.drain_junction Mos.pmos g in
  {
    Perf.c_x1 = cdb_p d.Design.dp +. cdb_n d.Design.load +. wire "x1";
    c_x2 = cdb_p d.Design.dp +. cdb_n d.Design.load +. wire "x2";
    c_out = cdb_n d.Design.stage2 +. cdb_p d.Design.src2 +. wire "out";
    c_cc_route = 0.5 *. wire "x2";
  }
