(** Sizing vector of the two-stage Miller op amp.

    The design variables of the §V flow: channel geometries (including
    the {e fold counts}, the geometric parameters the survey singles
    out), the compensation capacitor and the reference current. *)

type t = {
  dp : Mos.geometry;  (** P1/P2 input differential pair (PMOS) *)
  load : Mos.geometry;  (** N3/N4 mirror load (NMOS) *)
  tail : Mos.geometry;  (** P6 tail current source *)
  bias : Mos.geometry;  (** P5 bias diode *)
  stage2 : Mos.geometry;  (** N8 second-stage driver *)
  src2 : Mos.geometry;  (** P7 second-stage current source *)
  cc : float;  (** Miller compensation capacitor, F *)
  ibias : float;  (** reference current, A *)
}

val default : t
(** A sane textbook starting point. *)

val perturb :
  Prelude.Rng.t -> ?fold_moves:bool -> t -> t
(** Multiply one randomly chosen continuous variable by a log-normal
    step (bounded to the variable's range), or — when [fold_moves] is
    true (default) — occasionally step one device's fold count by
    +-1 within [1, 16]. *)

val tail_current : t -> float
(** Current through the tail source: ibias mirrored by the
    tail/bias width ratio. *)

val stage2_current : t -> float

val pp : Format.formatter -> t -> unit
