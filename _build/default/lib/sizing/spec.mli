(** Performance specifications and measured performances.

    A specification is a named bound ("dc-gain higher than 50 dB"); a
    performance is a set of measured values. The sizing optimizer
    (survey §V) minimizes spec violations plus design objectives. *)

type bound = At_least of float | At_most of float

type t = { name : string; bound : bound; unit_ : string }

type performance = (string * float) list

val make : name:string -> bound:bound -> unit_:string -> t

val value : performance -> string -> float option

val satisfied : t -> performance -> bool
(** An absent measurement fails the spec. *)

val all_satisfied : t list -> performance -> bool

val violation : t -> performance -> float
(** Normalized violation in [0, inf): 0 when satisfied, otherwise the
    relative distance to the bound (missing measurement counts 1). *)

val total_violation : t list -> performance -> float

val report :
  t list -> performance -> (string * float * bool) list
(** Per-spec (name, measured value, satisfied) rows — the Fig. 10
    tables. Missing measurements report [nan]. *)

val pp : Format.formatter -> t -> unit
