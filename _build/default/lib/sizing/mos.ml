type params = {
  kp : float;
  vth : float;
  lambda : float;
  cox : float;
  cj : float;
  cjsw : float;
  ldiff : float;
}

let nmos =
  {
    kp = 300e-6;
    vth = 0.45;
    lambda = 0.08;
    cox = 8.5e-3;
    cj = 1.0e-3;
    cjsw = 2.0e-10;
    ldiff = 0.5e-6;
  }

let pmos =
  {
    kp = 90e-6;
    vth = 0.45;
    lambda = 0.10;
    cox = 8.5e-3;
    cj = 1.1e-3;
    cjsw = 2.2e-10;
    ldiff = 0.5e-6;
  }

type geometry = { w : float; l : float; folds : int }

type op_point = {
  gm : float;
  gds : float;
  vov : float;
  cgs : float;
  cgd : float;
  cdb : float;
  csb : float;
}

let check g ~id =
  if g.w <= 0.0 || g.l <= 0.0 || g.folds < 1 then
    invalid_arg "Mos: non-positive geometry";
  if id <= 0.0 then invalid_arg "Mos: non-positive current"

(* An m-finger device: drain diffusions are shared between adjacent
   finger pairs, so there are ceil(m/2) drain stripes of width w/m (and
   floor(m/2)+1 source stripes). Junction area scales accordingly. *)
let junction p g ~stripes =
  let finger_w = g.w /. float_of_int g.folds in
  let area = float_of_int stripes *. finger_w *. p.ldiff in
  let perimeter =
    float_of_int stripes *. 2.0 *. (finger_w +. p.ldiff)
  in
  (p.cj *. area) +. (p.cjsw *. perimeter)

let drain_stripes folds = (folds + 1) / 2
let source_stripes folds = (folds / 2) + 1

let drain_junction p g = junction p g ~stripes:(drain_stripes g.folds)

let operating_point p g ~id =
  check g ~id;
  let wl = g.w /. g.l in
  let vov = sqrt (2.0 *. id /. (p.kp *. wl)) in
  let gm = sqrt (2.0 *. p.kp *. wl *. id) in
  (* channel-length modulation weakens with longer channels *)
  let lambda_eff = p.lambda *. (1.0e-6 /. g.l) in
  let gds = lambda_eff *. id in
  let cgs = 2.0 /. 3.0 *. g.w *. g.l *. p.cox in
  let cgd = 0.3e-9 *. g.w (* overlap, ~0.3 fF/um *) in
  {
    gm;
    gds;
    vov;
    cgs;
    cgd;
    cdb = junction p g ~stripes:(drain_stripes g.folds);
    csb = junction p g ~stripes:(source_stripes g.folds);
  }

let required_vgs p g ~id =
  check g ~id;
  p.vth +. sqrt (2.0 *. id /. (p.kp *. (g.w /. g.l)))
