(** Square-law MOS transistor model.

    The survey's layout-aware sizing (§V) relies on numerical
    simulation; with no SPICE engine available we substitute the
    classic long-channel square-law equations with channel-length
    modulation and junction capacitances (documented in DESIGN.md).
    What matters for reproducing the flow is captured faithfully:

    - transconductance and output conductance as functions of W/L and
      bias current, and
    - drain junction capacitance as a function of device {e folding} —
      an m-finger device shares drain diffusions between finger pairs,
      so more folds mean less junction capacitance, which is exactly
      the geometry/electrical coupling the survey highlights
      ("different foldings change the junction capacitances"). *)

type params = {
  kp : float;  (** transconductance factor, A/V^2 *)
  vth : float;  (** threshold voltage magnitude, V *)
  lambda : float;  (** channel-length modulation at L = 1um, 1/V *)
  cox : float;  (** gate capacitance, F/m^2 *)
  cj : float;  (** junction area capacitance, F/m^2 *)
  cjsw : float;  (** junction sidewall capacitance, F/m *)
  ldiff : float;  (** source/drain diffusion extent, m *)
}

val nmos : params
(** Generic 180nm-class NMOS. *)

val pmos : params

type geometry = { w : float; l : float; folds : int }
(** Channel width/length in meters; [folds] >= 1 fingers. *)

type op_point = {
  gm : float;  (** transconductance, S *)
  gds : float;  (** output conductance, S *)
  vov : float;  (** overdrive voltage, V *)
  cgs : float;  (** gate-source capacitance, F *)
  cgd : float;  (** gate-drain (overlap) capacitance, F *)
  cdb : float;  (** drain-bulk junction capacitance, F *)
  csb : float;  (** source-bulk junction capacitance, F *)
}

val operating_point : params -> geometry -> id:float -> op_point
(** Saturation-region small-signal parameters at drain current [id]
    (absolute value, amperes). Raises [Invalid_argument] on
    non-positive dimensions or current. *)

val drain_junction : params -> geometry -> float
(** Drain-bulk junction capacitance alone (used by the extractor). *)

val required_vgs : params -> geometry -> id:float -> float
(** |Vgs| to conduct [id] in saturation. *)
