(** Sizing vector of the folded-cascode OTA.

    The survey's Fig. 10 experiments sized a (fully differential)
    folded-cascode amplifier; this is the single-ended-output
    equivalent: NMOS input pair, PMOS folding current sources, PMOS
    cascodes, NMOS cascode mirror load. *)

type t = {
  dp : Mos.geometry;  (** input differential pair (NMOS) *)
  tail : Mos.geometry;  (** tail current source (NMOS) *)
  src : Mos.geometry;  (** folding current sources (PMOS, top) *)
  casc_p : Mos.geometry;  (** PMOS cascodes *)
  casc_n : Mos.geometry;  (** NMOS cascodes *)
  mirror : Mos.geometry;  (** NMOS mirror at the bottom *)
  bias : Mos.geometry;  (** bias diode *)
  ibias : float;  (** reference current, A *)
}

val default : t

val perturb : Prelude.Rng.t -> ?fold_moves:bool -> t -> t
(** Log-normal steps on one variable, or a fold-count step. *)

val tail_current : t -> float
val branch_current : t -> float
(** Current in each folded branch: sources carry tail/2 + branch. *)

val pp : Format.formatter -> t -> unit
