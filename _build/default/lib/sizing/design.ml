type t = {
  dp : Mos.geometry;
  load : Mos.geometry;
  tail : Mos.geometry;
  bias : Mos.geometry;
  stage2 : Mos.geometry;
  src2 : Mos.geometry;
  cc : float;
  ibias : float;
}

let um = 1e-6

let default =
  {
    dp = { Mos.w = 40.0 *. um; l = 0.5 *. um; folds = 1 };
    load = { Mos.w = 10.0 *. um; l = 1.0 *. um; folds = 1 };
    tail = { Mos.w = 20.0 *. um; l = 1.0 *. um; folds = 1 };
    bias = { Mos.w = 10.0 *. um; l = 1.0 *. um; folds = 1 };
    stage2 = { Mos.w = 60.0 *. um; l = 0.5 *. um; folds = 1 };
    src2 = { Mos.w = 40.0 *. um; l = 1.0 *. um; folds = 1 };
    cc = 1.0e-12;
    ibias = 20e-6;
  }

(* Variable ranges keeping the square-law model in a sensible regime. *)
let w_range = (1.0 *. um, 500.0 *. um)
let l_range = (0.18 *. um, 4.0 *. um)
let cc_range = (0.2e-12, 10e-12)
let ib_range = (2e-6, 200e-6)

let clamp (lo, hi) v = Float.max lo (Float.min hi v)

let lognormal_step rng v range =
  clamp range (v *. exp (0.25 *. Prelude.Rng.gaussian rng))

let step_folds rng (g : Mos.geometry) =
  let delta = if Prelude.Rng.bool rng then 1 else -1 in
  { g with Mos.folds = max 1 (min 16 (g.Mos.folds + delta)) }

let perturb rng ?(fold_moves = true) d =
  let pick = Prelude.Rng.int rng (if fold_moves then 16 else 14) in
  let step_w (g : Mos.geometry) =
    { g with Mos.w = lognormal_step rng g.Mos.w w_range }
  in
  let step_l (g : Mos.geometry) =
    { g with Mos.l = lognormal_step rng g.Mos.l l_range }
  in
  match pick with
  | 0 -> { d with dp = step_w d.dp }
  | 1 -> { d with dp = step_l d.dp }
  | 2 -> { d with load = step_w d.load }
  | 3 -> { d with load = step_l d.load }
  | 4 -> { d with tail = step_w d.tail }
  | 5 -> { d with tail = step_l d.tail }
  | 6 -> { d with bias = step_w d.bias }
  | 7 -> { d with bias = step_l d.bias }
  | 8 -> { d with stage2 = step_w d.stage2 }
  | 9 -> { d with stage2 = step_l d.stage2 }
  | 10 -> { d with src2 = step_w d.src2 }
  | 11 -> { d with src2 = step_l d.src2 }
  | 12 -> { d with cc = lognormal_step rng d.cc cc_range }
  | 13 -> { d with ibias = lognormal_step rng d.ibias ib_range }
  | 14 ->
      (* fold move on a random folding-relevant device *)
      (match Prelude.Rng.int rng 3 with
      | 0 -> { d with dp = step_folds rng d.dp }
      | 1 -> { d with stage2 = step_folds rng d.stage2 }
      | _ -> { d with src2 = step_folds rng d.src2 })
  | _ -> (
      match Prelude.Rng.int rng 3 with
      | 0 -> { d with load = step_folds rng d.load }
      | 1 -> { d with tail = step_folds rng d.tail }
      | _ -> { d with bias = step_folds rng d.bias })

let ratio (a : Mos.geometry) (b : Mos.geometry) =
  a.Mos.w /. a.Mos.l /. (b.Mos.w /. b.Mos.l)

let tail_current d = d.ibias *. ratio d.tail d.bias
let stage2_current d = d.ibias *. ratio d.src2 d.bias

let pp_geo ppf (g : Mos.geometry) =
  Format.fprintf ppf "W=%.2fu L=%.2fu m=%d" (g.Mos.w /. um) (g.Mos.l /. um)
    g.Mos.folds

let pp ppf d =
  Format.fprintf ppf
    "@[<v>dp: %a@,load: %a@,tail: %a@,bias: %a@,stage2: %a@,src2: %a@,\
     Cc=%.2fpF Ib=%.1fuA@]"
    pp_geo d.dp pp_geo d.load pp_geo d.tail pp_geo d.bias pp_geo d.stage2
    pp_geo d.src2 (d.cc *. 1e12) (d.ibias *. 1e6)
