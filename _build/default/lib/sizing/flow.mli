(** The layout-aware sizing flow (survey §V, ref [4], Figs. 9-10).

    Two sizing modes share the same annealing engine, specifications
    and performance model; they differ exactly where the survey says
    they should:

    - [Electrical_only]: the cost sees performances {e without} layout
      parasitics and carries no geometric objective; fold counts stay
      at 1 (no geometric optimization). This is Fig. 10(a): the result
      looks fine at schematic level and is then re-verified with
      extracted parasitics.
    - [Layout_aware]: every cost evaluation instantiates the layout
      template, extracts parasitics, and evaluates the specs {e with}
      them; area and aspect-ratio terms join the cost, and fold counts
      are free variables. This is Fig. 10(b).

    The flow records the share of wall-clock time spent inside
    extraction — the survey reports ~17%, demonstrating that in-loop
    extraction is affordable. *)

type mode = Electrical_only | Layout_aware

val default_specs : Spec.t list
(** dc-gain >= 60 dB, GBW >= 25 MHz, PM >= 60 deg, slew >= 15 V/us,
    power <= 2.5 mW, swing >= 0.9 V, headroom >= 0.05 V. *)

type config = {
  specs : Spec.t list;
  env : Perf.env;
  violation_weight : float;
  area_weight : float;  (** Layout_aware only *)
  aspect_weight : float;  (** Layout_aware only; pulls toward square *)
  power_weight : float;
  sa : Anneal.Sa.params;
}

val default_config : config

type 'd outcome = {
  mode : mode;
  design : 'd;  (** the topology's sizing vector *)
  layout : Template.instance;
  perf_nominal : Spec.performance;  (** without layout parasitics *)
  perf_extracted : Spec.performance;  (** with extracted parasitics *)
  met_nominal : bool;
  met_extracted : bool;
  evaluations : int;
  seconds : float;
  extraction_seconds : float;
}

val extraction_fraction : 'd outcome -> float

type 'd driver = {
  initial : 'd;
  perturb : Prelude.Rng.t -> fold_moves:bool -> 'd -> 'd;
  evaluate : ?parasitics:Perf.parasitics -> Perf.env -> 'd -> Spec.performance;
  template : 'd -> Template.instance;
  extract : 'd -> Template.instance -> Perf.parasitics;
}
(** Everything a topology must provide to participate in the flow. *)

val miller_driver : Design.t driver
val folded_cascode_driver : Fc_design.t driver

val run_driver :
  'd driver -> ?config:config -> rng:Prelude.Rng.t -> mode -> 'd outcome

val run :
  ?config:config -> rng:Prelude.Rng.t -> mode -> Design.t outcome
(** The two-stage Miller op amp (the repository's reference flow). *)

val run_folded_cascode :
  ?config:config -> rng:Prelude.Rng.t -> mode -> Fc_design.t outcome
(** The folded-cascode OTA — the amplifier class of the survey's
    Fig. 10 experiments. *)
