let extract (d : Fc_design.t) (inst : Template.instance) =
  let wire net =
    match List.assoc_opt net inst.Template.net_length_um with
    | Some len -> len *. Extract.wire_cap_per_um
    | None -> 0.0
  in
  {
    Perf.c_x1 =
      Mos.drain_junction Mos.nmos d.Fc_design.dp
      +. Mos.drain_junction Mos.pmos d.Fc_design.src
      +. wire "x1";
    c_x2 = 0.0;
    c_out =
      Mos.drain_junction Mos.pmos d.Fc_design.casc_p
      +. Mos.drain_junction Mos.nmos d.Fc_design.casc_n
      +. wire "out";
    c_cc_route = 0.0;
  }
