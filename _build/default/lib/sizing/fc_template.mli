(** Procedural layout template of the folded-cascode OTA.

    Row structure, bottom to top: NMOS mirror row (M1, M2), NMOS
    cascode row, input pair row with the tail and bias alongside, PMOS
    cascode row, PMOS source row. Produces the same topology-agnostic
    {!Template.instance} as the Miller template, so extraction and the
    sizing flow are shared. Net length estimates cover the folding
    nodes ("x1") and the output ("out"). *)

val generate : Fc_design.t -> Template.instance
