type mode = Electrical_only | Layout_aware

let default_specs =
  [
    Spec.make ~name:"a0_db" ~bound:(Spec.At_least 60.0) ~unit_:"dB";
    Spec.make ~name:"gbw_mhz" ~bound:(Spec.At_least 25.0) ~unit_:"MHz";
    Spec.make ~name:"pm_deg" ~bound:(Spec.At_least 60.0) ~unit_:"deg";
    Spec.make ~name:"slew_vus" ~bound:(Spec.At_least 15.0) ~unit_:"V/us";
    Spec.make ~name:"power_mw" ~bound:(Spec.At_most 2.5) ~unit_:"mW";
    Spec.make ~name:"swing_v" ~bound:(Spec.At_least 0.9) ~unit_:"V";
    Spec.make ~name:"headroom_v" ~bound:(Spec.At_least 0.05) ~unit_:"V";
  ]

type config = {
  specs : Spec.t list;
  env : Perf.env;
  violation_weight : float;
  area_weight : float;
  aspect_weight : float;
  power_weight : float;
  sa : Anneal.Sa.params;
}

let default_config =
  {
    specs = default_specs;
    env = Perf.default_env;
    violation_weight = 100.0;
    area_weight = 2e-4;  (* per um^2: ~30k um^2 layouts -> O(10) *)
    aspect_weight = 2.0;
    power_weight = 0.5;
    sa =
      {
        Anneal.Sa.initial_temperature = Some 10.0;
        final_temperature = 1e-3;
        moves_per_round = 150;
        schedule = Anneal.Schedule.Geometric 0.92;
        frozen_rounds = 12;
        max_rounds = 140;
      };
  }

type 'd outcome = {
  mode : mode;
  design : 'd;
  layout : Template.instance;
  perf_nominal : Spec.performance;
  perf_extracted : Spec.performance;
  met_nominal : bool;
  met_extracted : bool;
  evaluations : int;
  seconds : float;
  extraction_seconds : float;
}

(* A topology plugs into the flow through these five functions. *)
type 'd driver = {
  initial : 'd;
  perturb : Prelude.Rng.t -> fold_moves:bool -> 'd -> 'd;
  evaluate : ?parasitics:Perf.parasitics -> Perf.env -> 'd -> Spec.performance;
  template : 'd -> Template.instance;
  extract : 'd -> Template.instance -> Perf.parasitics;
}

let miller_driver =
  {
    initial = Design.default;
    perturb = (fun rng ~fold_moves d -> Design.perturb rng ~fold_moves d);
    evaluate = (fun ?parasitics env d -> Perf.evaluate ?parasitics env d);
    template = Template.generate;
    extract = Extract.extract;
  }

let folded_cascode_driver =
  {
    initial = Fc_design.default;
    perturb = (fun rng ~fold_moves d -> Fc_design.perturb rng ~fold_moves d);
    evaluate = (fun ?parasitics env d -> Fc_perf.evaluate ?parasitics env d);
    template = Fc_template.generate;
    extract = Fc_extract.extract;
  }

let extraction_fraction o =
  if o.seconds <= 0.0 then 0.0 else o.extraction_seconds /. o.seconds

let power_of perf =
  Option.value (Spec.value perf "power_mw") ~default:0.0

let run_driver driver ?(config = default_config) ~rng mode =
  let t0 = Sys.time () in
  let extraction_time = ref 0.0 in
  let extracted_perf design =
    let te = Sys.time () in
    let layout = driver.template design in
    let parasitics = driver.extract design layout in
    extraction_time := !extraction_time +. (Sys.time () -. te);
    (layout, driver.evaluate ~parasitics config.env design)
  in
  let cost design =
    match mode with
    | Electrical_only ->
        let perf = driver.evaluate config.env design in
        (config.violation_weight *. Spec.total_violation config.specs perf)
        +. (config.power_weight *. power_of perf)
    | Layout_aware ->
        let layout, perf = extracted_perf design in
        (config.violation_weight *. Spec.total_violation config.specs perf)
        +. (config.power_weight *. power_of perf)
        +. (config.area_weight *. layout.Template.area_um2)
        +. (config.aspect_weight
            *. Float.abs (log (Template.aspect_ratio layout)))
  in
  let neighbor rng design =
    driver.perturb rng ~fold_moves:(mode = Layout_aware) design
  in
  let problem = { Anneal.Sa.init = driver.initial; neighbor; cost } in
  let result = Anneal.Sa.run ~rng config.sa problem in
  let design = result.Anneal.Sa.best in
  let layout, perf_extracted = extracted_perf design in
  let perf_nominal = driver.evaluate config.env design in
  {
    mode;
    design;
    layout;
    perf_nominal;
    perf_extracted;
    met_nominal = Spec.all_satisfied config.specs perf_nominal;
    met_extracted = Spec.all_satisfied config.specs perf_extracted;
    evaluations = result.Anneal.Sa.evaluated;
    seconds = Sys.time () -. t0;
    extraction_seconds = !extraction_time;
  }

let run ?config ~rng mode = run_driver miller_driver ?config ~rng mode

let run_folded_cascode ?config ~rng mode =
  run_driver folded_cascode_driver ?config ~rng mode
