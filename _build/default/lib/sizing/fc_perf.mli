(** Analytic performance of the folded-cascode OTA.

    Single-stage cascoded gain, dominant pole at the (high-impedance)
    output, non-dominant pole at the folding node; evaluated
    numerically like {!Perf}. The {!Perf.parasitics} record is
    reinterpreted for this topology's nodes: [c_x1] loads the folding
    node, [c_out] the output; [c_x2] and [c_cc_route] are unused.
    Performance keys are identical to {!Perf}, so the same {!Spec}
    lists apply. *)

val evaluate :
  ?parasitics:Perf.parasitics -> Perf.env -> Fc_design.t -> Spec.performance
