(** Analytic performance evaluation of the two-stage Miller op amp.

    Stands in for the SPICE simulation of the survey's §V flow (see
    DESIGN.md): standard two-stage small-signal formulas over the
    square-law operating points, with an explicit parasitic budget per
    circuit node so the layout-aware loop can feed extracted
    capacitances back into the evaluation.

    Performance keys (all in {!Spec.performance}):
    ["a0_db"] dc gain, ["gbw_mhz"] unity-gain bandwidth,
    ["pm_deg"] phase margin, ["slew_vus"] slew rate,
    ["power_mw"] static power, ["swing_v"] output swing,
    ["headroom_v"] input-stage bias headroom (negative = stage does not
    bias up). *)

type parasitics = {
  c_x1 : float;  (** extra capacitance on the mirror (diode) node, F *)
  c_x2 : float;  (** extra capacitance on the first-stage output, F *)
  c_out : float;  (** extra capacitance on the output node, F *)
  c_cc_route : float;  (** wiring in parallel with the Miller cap, F *)
}

val no_parasitics : parasitics

type env = { vdd : float; cl : float }
(** Supply voltage and external load capacitance. *)

val default_env : env
(** 1.8 V, 2 pF. *)

val evaluate : ?parasitics:parasitics -> env -> Design.t -> Spec.performance
