type t = {
  dp : Mos.geometry;
  tail : Mos.geometry;
  src : Mos.geometry;
  casc_p : Mos.geometry;
  casc_n : Mos.geometry;
  mirror : Mos.geometry;
  bias : Mos.geometry;
  ibias : float;
}

let um = 1e-6

let default =
  {
    dp = { Mos.w = 60.0 *. um; l = 0.4 *. um; folds = 1 };
    tail = { Mos.w = 30.0 *. um; l = 1.0 *. um; folds = 1 };
    src = { Mos.w = 60.0 *. um; l = 0.8 *. um; folds = 1 };
    casc_p = { Mos.w = 40.0 *. um; l = 0.4 *. um; folds = 1 };
    casc_n = { Mos.w = 20.0 *. um; l = 0.4 *. um; folds = 1 };
    mirror = { Mos.w = 20.0 *. um; l = 0.8 *. um; folds = 1 };
    bias = { Mos.w = 10.0 *. um; l = 1.0 *. um; folds = 1 };
    ibias = 25e-6;
  }

let w_range = (1.0 *. um, 500.0 *. um)
let l_range = (0.18 *. um, 4.0 *. um)
let ib_range = (2e-6, 200e-6)

let clamp (lo, hi) v = Float.max lo (Float.min hi v)

let lognormal_step rng v range =
  clamp range (v *. exp (0.25 *. Prelude.Rng.gaussian rng))

let step_w rng (g : Mos.geometry) =
  { g with Mos.w = lognormal_step rng g.Mos.w w_range }

let step_l rng (g : Mos.geometry) =
  { g with Mos.l = lognormal_step rng g.Mos.l l_range }

let step_folds rng (g : Mos.geometry) =
  let delta = if Prelude.Rng.bool rng then 1 else -1 in
  { g with Mos.folds = max 1 (min 16 (g.Mos.folds + delta)) }

let perturb rng ?(fold_moves = true) d =
  match Prelude.Rng.int rng (if fold_moves then 16 else 15) with
  | 0 -> { d with dp = step_w rng d.dp }
  | 1 -> { d with dp = step_l rng d.dp }
  | 2 -> { d with tail = step_w rng d.tail }
  | 3 -> { d with tail = step_l rng d.tail }
  | 4 -> { d with src = step_w rng d.src }
  | 5 -> { d with src = step_l rng d.src }
  | 6 -> { d with casc_p = step_w rng d.casc_p }
  | 7 -> { d with casc_p = step_l rng d.casc_p }
  | 8 -> { d with casc_n = step_w rng d.casc_n }
  | 9 -> { d with casc_n = step_l rng d.casc_n }
  | 10 -> { d with mirror = step_w rng d.mirror }
  | 11 -> { d with mirror = step_l rng d.mirror }
  | 12 -> { d with bias = step_w rng d.bias }
  | 13 -> { d with bias = step_l rng d.bias }
  | 14 -> { d with ibias = lognormal_step rng d.ibias ib_range }
  | _ -> (
      match Prelude.Rng.int rng 4 with
      | 0 -> { d with dp = step_folds rng d.dp }
      | 1 -> { d with src = step_folds rng d.src }
      | 2 -> { d with casc_p = step_folds rng d.casc_p }
      | _ -> { d with mirror = step_folds rng d.mirror })

let ratio (a : Mos.geometry) (b : Mos.geometry) =
  a.Mos.w /. a.Mos.l /. (b.Mos.w /. b.Mos.l)

let tail_current d = d.ibias *. ratio d.tail d.bias
let branch_current d = tail_current d /. 2.0

let pp_geo ppf (g : Mos.geometry) =
  Format.fprintf ppf "W=%.2fu L=%.2fu m=%d" (g.Mos.w /. um) (g.Mos.l /. um)
    g.Mos.folds

let pp ppf d =
  Format.fprintf ppf
    "@[<v>dp: %a@,tail: %a@,src: %a@,casc_p: %a@,casc_n: %a@,mirror: %a@,\
     bias: %a@,Ib=%.1fuA@]"
    pp_geo d.dp pp_geo d.tail pp_geo d.src pp_geo d.casc_p pp_geo d.casc_n
    pp_geo d.mirror pp_geo d.bias (d.ibias *. 1e6)
