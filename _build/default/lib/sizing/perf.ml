type parasitics = {
  c_x1 : float;
  c_x2 : float;
  c_out : float;
  c_cc_route : float;
}

let no_parasitics = { c_x1 = 0.0; c_x2 = 0.0; c_out = 0.0; c_cc_route = 0.0 }

type env = { vdd : float; cl : float }

let default_env = { vdd = 1.8; cl = 2e-12 }

let pi = Float.pi

let evaluate ?(parasitics = no_parasitics) env (d : Design.t) =
  let i_tail = Design.tail_current d in
  let i1 = i_tail /. 2.0 in
  let i2 = Design.stage2_current d in
  let dp = Mos.operating_point Mos.pmos d.Design.dp ~id:i1 in
  let load = Mos.operating_point Mos.nmos d.Design.load ~id:i1 in
  let tail = Mos.operating_point Mos.pmos d.Design.tail ~id:i_tail in
  let stage2 = Mos.operating_point Mos.nmos d.Design.stage2 ~id:i2 in
  let src2 = Mos.operating_point Mos.pmos d.Design.src2 ~id:i2 in
  let cc = d.Design.cc +. parasitics.c_cc_route in
  (* gains *)
  let a1 = dp.Mos.gm /. (dp.Mos.gds +. load.Mos.gds) in
  let a2 = stage2.Mos.gm /. (stage2.Mos.gds +. src2.Mos.gds) in
  let a0_db = 20.0 *. log10 (Float.max 1e-9 (a1 *. a2)) in
  (* Node capacitances. Gate capacitances are schematic-intrinsic;
     junction (drain diffusion) and wiring capacitances are layout-
     dependent and enter only through [parasitics] — that split is what
     makes "sizing without parasitic considerations" blind to them. *)
  let c_x2 = stage2.Mos.cgs +. parasitics.c_x2 in
  let c_out = env.cl +. parasitics.c_out in
  (* Poles and zero of the Miller-compensated two-stage; the frequency
     response is then evaluated numerically (a small AC analysis, our
     stand-in for the survey's in-loop SPICE runs) to find the
     unity-gain frequency and the phase margin. *)
  let a0_lin = Float.max 1e-9 (a1 *. a2) in
  let gbw_est = dp.Mos.gm /. (2.0 *. pi *. cc) in
  let p1 = gbw_est /. a0_lin in
  let p2 =
    stage2.Mos.gm *. cc
    /. (2.0 *. pi *. ((c_x2 *. c_out) +. (cc *. (c_x2 +. c_out))))
  in
  let z = stage2.Mos.gm /. (2.0 *. pi *. cc) in
  let c_x1 = (load.Mos.cgs *. 2.0) +. parasitics.c_x1 in
  let p_mirror = load.Mos.gm /. (2.0 *. pi *. c_x1) in
  let response f =
    let open Complex in
    let jf p = { re = 1.0; im = f /. p } in
    let num = { re = 1.0; im = -.(f /. z) } in
    div
      (mul { re = a0_lin; im = 0.0 } num)
      (mul (mul (jf p1) (jf p2)) (jf p_mirror))
  in
  let magnitude f = Complex.norm (response f) in
  (* |H| is monotonically decreasing past p1; bisect for |H| = 1 *)
  let gbw =
    let lo = ref (Float.max 1.0 p1) and hi = ref 1e12 in
    if magnitude !lo <= 1.0 then !lo
    else begin
      for _ = 1 to 60 do
        let mid = sqrt (!lo *. !hi) in
        if magnitude mid > 1.0 then lo := mid else hi := mid
      done;
      sqrt (!lo *. !hi)
    end
  in
  let pm =
    let h = response gbw in
    180.0 +. (Complex.arg h *. 180.0 /. pi)
  in
  (* large-signal *)
  let slew_int = i_tail /. cc in
  let slew_ext = i2 /. c_out in
  let slew = Float.min slew_int slew_ext in
  let power = env.vdd *. (d.Design.ibias +. i_tail +. i2) in
  let swing = env.vdd -. stage2.Mos.vov -. src2.Mos.vov in
  (* can the input stage bias up? vdd must cover tail vov + dp vgs
     around mid-rail input *)
  let vgs_dp = Mos.required_vgs Mos.pmos d.Design.dp ~id:i1 in
  let headroom = env.vdd /. 2.0 -. (tail.Mos.vov +. vgs_dp -. 0.45) in
  [
    ("a0_db", a0_db);
    ("gbw_mhz", gbw /. 1e6);
    ("pm_deg", pm);
    ("slew_vus", slew /. 1e6);
    ("power_mw", power *. 1e3);
    ("swing_v", swing);
    ("headroom_v", headroom);
  ]
