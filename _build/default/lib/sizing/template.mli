(** Procedural layout template of the two-stage Miller op amp.

    Stands in for the survey's Cadence PCELL/SKILL templates (§V): a
    deterministic row-based generator that turns a sizing vector into a
    placement in microseconds — fast enough to run inside every
    iteration of the optimization loop, which is the property the
    survey's template-based approach exists to provide.

    Template structure (bottom to top): NMOS row (mirror load flanking
    the second-stage driver), PMOS differential pair row (mirrored
    about the template axis), PMOS bias row (tail, diode, second-stage
    source), with the compensation capacitor alongside. All devices are
    folded as the sizing vector dictates. *)

type placed_device = {
  name : string;
  rect : Geometry.Rect.t;  (** grid units, 100 per um *)
}

type instance = {
  devices : placed_device list;
  width_um : float;
  height_um : float;
  area_um2 : float;
  net_length_um : (string * float) list;
      (** estimated wiring length per net: x1, x2, out, tail, bias *)
}

val grid_per_um : int

val generate : Design.t -> instance
(** Never fails: every sizing in the {!Design.perturb} ranges maps to a
    legal (overlap-free — tested) template instance. *)

val aspect_ratio : instance -> float
(** width / height. *)
