lib/sizing/design.ml: Float Format Mos Prelude
