lib/sizing/mos.mli:
