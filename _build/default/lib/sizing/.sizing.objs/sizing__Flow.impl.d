lib/sizing/flow.ml: Anneal Design Extract Fc_design Fc_extract Fc_perf Fc_template Float Option Perf Prelude Spec Sys Template
