lib/sizing/spec.mli: Format
