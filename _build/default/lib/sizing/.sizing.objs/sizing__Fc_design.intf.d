lib/sizing/fc_design.mli: Format Mos Prelude
