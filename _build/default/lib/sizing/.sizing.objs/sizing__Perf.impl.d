lib/sizing/perf.ml: Complex Design Float Mos
