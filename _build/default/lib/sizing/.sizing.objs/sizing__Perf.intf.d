lib/sizing/perf.mli: Design Spec
