lib/sizing/fc_design.ml: Float Format Mos Prelude
