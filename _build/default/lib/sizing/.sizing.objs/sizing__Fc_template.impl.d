lib/sizing/fc_template.ml: Fc_design Float Geometry List Mos Rect String Template
