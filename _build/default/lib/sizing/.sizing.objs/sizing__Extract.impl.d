lib/sizing/extract.ml: Design List Mos Perf Template
