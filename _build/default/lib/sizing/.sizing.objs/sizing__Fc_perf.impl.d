lib/sizing/fc_perf.ml: Complex Fc_design Float Mos Perf
