lib/sizing/flow.mli: Anneal Design Fc_design Perf Prelude Spec Template
