lib/sizing/extract.mli: Design Perf Template
