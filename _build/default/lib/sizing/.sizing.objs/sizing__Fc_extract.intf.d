lib/sizing/fc_extract.mli: Fc_design Perf Template
