lib/sizing/fc_template.mli: Fc_design Template
