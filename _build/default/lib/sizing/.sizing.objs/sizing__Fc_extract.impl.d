lib/sizing/fc_extract.ml: Extract Fc_design List Mos Perf Template
