lib/sizing/design.mli: Format Mos Prelude
