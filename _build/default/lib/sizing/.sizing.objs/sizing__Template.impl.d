lib/sizing/template.ml: Design Float Geometry List Mos Rect String
