lib/sizing/spec.ml: Float Format List Option
