lib/sizing/template.mli: Design Geometry
