lib/sizing/fc_perf.mli: Fc_design Perf Spec
