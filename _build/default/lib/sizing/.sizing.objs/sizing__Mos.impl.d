lib/sizing/mos.ml:
