open Geometry

type placed_device = { name : string; rect : Rect.t }

type instance = {
  devices : placed_device list;
  width_um : float;
  height_um : float;
  area_um2 : float;
  net_length_um : (string * float) list;
}

let grid_per_um = 100

let grid um = max 1 (int_of_float (Float.round (um *. float_of_int grid_per_um)))

(* Folded MOS cell footprint: fingers of width w/m stacked at the
   contacted gate pitch. Mirrors Device.mos_footprint in lib/netlist
   but works on the meter-based sizing geometry. *)
let mos_cell (g : Mos.geometry) =
  let w_um = g.Mos.w *. 1e6 and l_um = g.Mos.l *. 1e6 in
  let folds = max 1 g.Mos.folds in
  let finger = w_um /. float_of_int folds in
  let pitch = l_um +. 0.8 in
  (grid (finger +. 1.2), grid ((pitch *. float_of_int folds) +. 0.6))

let cap_cell farads =
  let area_um2 = farads /. 1e-15 in
  let side = sqrt (Float.max 1.0 area_um2) in
  (grid side, grid side)

let center r =
  let cx2, cy2 = Rect.center2 r in
  (float_of_int cx2 /. 2.0, float_of_int cy2 /. 2.0)

let manhattan (x1, y1) (x2, y2) = Float.abs (x1 -. x2) +. Float.abs (y1 -. y2)

let generate (d : Design.t) =
  let dp_w, dp_h = mos_cell d.Design.dp in
  let load_w, load_h = mos_cell d.Design.load in
  let tail_w, tail_h = mos_cell d.Design.tail in
  let bias_w, bias_h = mos_cell d.Design.bias in
  let st2_w, st2_h = mos_cell d.Design.stage2 in
  let src2_w, src2_h = mos_cell d.Design.src2 in
  let cc_w, cc_h = cap_cell d.Design.cc in
  let gap = grid 0.8 in
  (* bottom row: N3 N8 N4 (load mirror flanks the driver) *)
  let row0_h = max load_h st2_h in
  let n3 = Rect.make ~x:0 ~y:0 ~w:load_w ~h:load_h in
  let n8 = Rect.make ~x:(load_w + gap) ~y:0 ~w:st2_w ~h:st2_h in
  let n4 = Rect.make ~x:(load_w + gap + st2_w + gap) ~y:0 ~w:load_w ~h:load_h in
  (* middle row: P1 P2 differential pair *)
  let y1 = row0_h + gap in
  let p1 = Rect.make ~x:0 ~y:y1 ~w:dp_w ~h:dp_h in
  let p2 = Rect.make ~x:(dp_w + gap) ~y:y1 ~w:dp_w ~h:dp_h in
  (* top row: P5 P6 P7 bias devices *)
  let y2 = y1 + dp_h + gap in
  let p5 = Rect.make ~x:0 ~y:y2 ~w:bias_w ~h:bias_h in
  let p6 = Rect.make ~x:(bias_w + gap) ~y:y2 ~w:tail_w ~h:tail_h in
  let p7 = Rect.make ~x:(bias_w + gap + tail_w + gap) ~y:y2 ~w:src2_w ~h:src2_h in
  (* capacitor column to the right of everything *)
  let core_w =
    List.fold_left max 0
      [ Rect.x_max n4; Rect.x_max p2; Rect.x_max p7 ]
  in
  let cc_rect = Rect.make ~x:(core_w + gap) ~y:0 ~w:cc_w ~h:cc_h in
  let devices =
    [
      { name = "N3"; rect = n3 };
      { name = "N8"; rect = n8 };
      { name = "N4"; rect = n4 };
      { name = "P1"; rect = p1 };
      { name = "P2"; rect = p2 };
      { name = "P5"; rect = p5 };
      { name = "P6"; rect = p6 };
      { name = "P7"; rect = p7 };
      { name = "CC"; rect = cc_rect };
    ]
  in
  let bbox = Rect.bbox_of_list (List.map (fun pd -> pd.rect) devices) in
  let to_um g = float_of_int g /. float_of_int grid_per_um in
  let c name =
    center (List.find (fun pd -> String.equal pd.name name) devices).rect
  in
  let path points =
    let rec go acc = function
      | a :: (b :: _ as rest) -> go (acc +. manhattan a b) rest
      | [ _ ] | [] -> acc
    in
    to_um (int_of_float (go 0.0 points))
  in
  let net_length_um =
    [
      ("x1", path [ c "P1"; c "N3"; c "N4" ]);
      ("x2", path [ c "P2"; c "N4"; c "N8"; c "CC" ]);
      ("out", path [ c "N8"; c "P7"; c "CC" ]);
      ("tail", path [ c "P6"; c "P1"; c "P2" ]);
      ("bias", path [ c "P5"; c "P6"; c "P7" ]);
    ]
  in
  {
    devices;
    width_um = to_um (Rect.x_max bbox);
    height_um = to_um (Rect.y_max bbox);
    area_um2 = to_um (Rect.x_max bbox) *. to_um (Rect.y_max bbox);
    net_length_um;
  }

let aspect_ratio inst =
  if inst.height_um = 0.0 then 1.0 else inst.width_um /. inst.height_um
