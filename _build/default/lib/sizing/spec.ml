type bound = At_least of float | At_most of float
type t = { name : string; bound : bound; unit_ : string }
type performance = (string * float) list

let make ~name ~bound ~unit_ = { name; bound; unit_ }
let value perf name = List.assoc_opt name perf

let satisfied spec perf =
  match value perf spec.name with
  | None -> false
  | Some v -> (
      match spec.bound with
      | At_least b -> v >= b
      | At_most b -> v <= b)

let all_satisfied specs perf = List.for_all (fun s -> satisfied s perf) specs

let violation spec perf =
  match value perf spec.name with
  | None -> 1.0
  | Some v -> (
      let rel shortfall bound =
        shortfall /. Float.max 1e-12 (Float.abs bound)
      in
      match spec.bound with
      | At_least b -> if v >= b then 0.0 else rel (b -. v) b
      | At_most b -> if v <= b then 0.0 else rel (v -. b) b)

let total_violation specs perf =
  List.fold_left (fun acc s -> acc +. violation s perf) 0.0 specs

let report specs perf =
  List.map
    (fun s ->
      let v = Option.value (value perf s.name) ~default:Float.nan in
      (s.name, v, satisfied s perf))
    specs

let pp ppf s =
  let op, b = match s.bound with At_least b -> (">=", b) | At_most b -> ("<=", b) in
  Format.fprintf ppf "%s %s %g %s" s.name op b s.unit_
