(** Parasitic extraction for the folded-cascode template: junction
    capacitances of the devices on each node plus wiring proportional
    to the template's net lengths, mapped onto the reinterpreted
    {!Perf.parasitics} fields ([c_x1] = folding node, [c_out] =
    output). *)

val extract : Fc_design.t -> Template.instance -> Perf.parasitics
