open Geometry

let grid um =
  max 1
    (int_of_float
       (Float.round (um *. float_of_int Template.grid_per_um)))

let mos_cell (g : Mos.geometry) =
  let w_um = g.Mos.w *. 1e6 and l_um = g.Mos.l *. 1e6 in
  let folds = max 1 g.Mos.folds in
  let finger = w_um /. float_of_int folds in
  let pitch = l_um +. 0.8 in
  (grid (finger +. 1.2), grid ((pitch *. float_of_int folds) +. 0.6))

let generate (d : Fc_design.t) =
  let dp_w, dp_h = mos_cell d.Fc_design.dp in
  let tail_w, tail_h = mos_cell d.Fc_design.tail in
  let src_w, src_h = mos_cell d.Fc_design.src in
  let cp_w, cp_h = mos_cell d.Fc_design.casc_p in
  let cn_w, cn_h = mos_cell d.Fc_design.casc_n in
  let mr_w, mr_h = mos_cell d.Fc_design.mirror in
  let bias_w, bias_h = mos_cell d.Fc_design.bias in
  let gap = grid 0.8 in
  (* mirrored column pairs around the template axis, rows bottom-up *)
  let row_pair name_l name_r y w h devs =
    let left = Rect.make ~x:0 ~y ~w ~h in
    let right = Rect.make ~x:(w + gap) ~y ~w ~h in
    ({ Template.name = name_l; rect = left }
     :: { Template.name = name_r; rect = right }
     :: devs,
     y + h + gap)
  in
  let devs, y = row_pair "MR1" "MR2" 0 mr_w mr_h [] in
  let devs, y = row_pair "CN1" "CN2" y cn_w cn_h devs in
  let devs, y = row_pair "P1" "P2" y dp_w dp_h devs in
  let devs, y = row_pair "CP1" "CP2" y cp_w cp_h devs in
  let devs, _ = row_pair "SRC1" "SRC2" y src_w src_h devs in
  (* tail + bias column to the right of the core *)
  let core_w =
    List.fold_left (fun acc pd -> max acc (Rect.x_max pd.Template.rect)) 0 devs
  in
  let tail_rect = Rect.make ~x:(core_w + gap) ~y:0 ~w:tail_w ~h:tail_h in
  let bias_rect =
    Rect.make ~x:(core_w + gap) ~y:(tail_h + gap) ~w:bias_w ~h:bias_h
  in
  let devices =
    List.rev
      ({ Template.name = "BIAS"; rect = bias_rect }
      :: { Template.name = "TAIL"; rect = tail_rect }
      :: devs)
  in
  let bbox = Rect.bbox_of_list (List.map (fun pd -> pd.Template.rect) devices) in
  let to_um g = float_of_int g /. float_of_int Template.grid_per_um in
  let center name =
    let pd = List.find (fun pd -> String.equal pd.Template.name name) devices in
    let cx2, cy2 = Rect.center2 pd.Template.rect in
    (float_of_int cx2 /. 2.0, float_of_int cy2 /. 2.0)
  in
  let manhattan (x1, y1) (x2, y2) =
    Float.abs (x1 -. x2) +. Float.abs (y1 -. y2)
  in
  let path points =
    let rec go acc = function
      | a :: (b :: _ as rest) -> go (acc +. manhattan a b) rest
      | [ _ ] | [] -> acc
    in
    to_um (int_of_float (go 0.0 points))
  in
  let net_length_um =
    [
      (* folding node: input drain -> source drain -> PMOS cascode *)
      ("x1", path [ center "P2"; center "SRC2"; center "CP2" ]);
      ("out", path [ center "CP2"; center "CN2" ]);
      ("tail", path [ center "TAIL"; center "P1"; center "P2" ]);
      ("bias", path [ center "BIAS"; center "TAIL" ]);
    ]
  in
  {
    Template.devices;
    width_um = to_um (Rect.x_max bbox);
    height_um = to_um (Rect.y_max bbox);
    area_um2 = to_um (Rect.x_max bbox) *. to_um (Rect.y_max bbox);
    net_length_um;
  }
