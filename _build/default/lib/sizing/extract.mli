(** Parasitic extraction over template instances.

    The survey's observation — "extraction within sizing is not as
    expensive as it has been traditionally considered" — holds because
    the template fixes the wiring topology: extraction is a handful of
    closed-form contributions per node:

    - drain-junction capacitance of every device on the node (a
      function of the device's fold count), and
    - wiring capacitance proportional to the template's estimated net
      length.

    The result feeds straight back into {!Perf.evaluate}. *)

val wire_cap_per_um : float
(** 0.2 fF/um of routed net. *)

val extract : Design.t -> Template.instance -> Perf.parasitics
