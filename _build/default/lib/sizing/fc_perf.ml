let pi = Float.pi

let evaluate ?(parasitics = Perf.no_parasitics) (env : Perf.env)
    (d : Fc_design.t) =
  let i_tail = Fc_design.tail_current d in
  let i_branch = Fc_design.branch_current d in
  let dp = Mos.operating_point Mos.nmos d.Fc_design.dp ~id:i_branch in
  let tail = Mos.operating_point Mos.nmos d.Fc_design.tail ~id:i_tail in
  (* folding sources carry the input branch plus the cascode branch *)
  let src = Mos.operating_point Mos.pmos d.Fc_design.src ~id:i_tail in
  let casc_p = Mos.operating_point Mos.pmos d.Fc_design.casc_p ~id:i_branch in
  let casc_n = Mos.operating_point Mos.nmos d.Fc_design.casc_n ~id:i_branch in
  let mirror = Mos.operating_point Mos.nmos d.Fc_design.mirror ~id:i_branch in
  (* cascoded output resistance *)
  let r_up =
    casc_p.Mos.gm /. casc_p.Mos.gds /. (src.Mos.gds +. dp.Mos.gds)
  in
  let r_down = casc_n.Mos.gm /. casc_n.Mos.gds /. mirror.Mos.gds in
  let r_out = r_up *. r_down /. (r_up +. r_down) in
  let a0_lin = Float.max 1e-9 (dp.Mos.gm *. r_out) in
  let a0_db = 20.0 *. log10 a0_lin in
  let c_out = env.Perf.cl +. parasitics.Perf.c_out in
  let c_fold = casc_p.Mos.cgs +. parasitics.Perf.c_x1 in
  let p1 = 1.0 /. (2.0 *. pi *. r_out *. c_out) in
  let p2 = casc_p.Mos.gm /. (2.0 *. pi *. c_fold) in
  let response f =
    let open Complex in
    let pole p = { re = 1.0; im = f /. p } in
    div { re = a0_lin; im = 0.0 } (mul (pole p1) (pole p2))
  in
  let magnitude f = Complex.norm (response f) in
  let gbw =
    let lo = ref (Float.max 1.0 p1) and hi = ref 1e12 in
    if magnitude !lo <= 1.0 then !lo
    else begin
      for _ = 1 to 60 do
        let mid = sqrt (!lo *. !hi) in
        if magnitude mid > 1.0 then lo := mid else hi := mid
      done;
      sqrt (!lo *. !hi)
    end
  in
  let pm = 180.0 +. (Complex.arg (response gbw) *. 180.0 /. pi) in
  let slew = i_branch /. c_out in
  let power = env.Perf.vdd *. (d.Fc_design.ibias +. i_tail +. (2.0 *. i_tail)) in
  let swing =
    env.Perf.vdd -. src.Mos.vov -. casc_p.Mos.vov -. casc_n.Mos.vov
    -. mirror.Mos.vov
  in
  let vgs_dp = Mos.required_vgs Mos.nmos d.Fc_design.dp ~id:i_branch in
  let headroom = (env.Perf.vdd /. 2.0) -. (tail.Mos.vov +. vgs_dp -. 0.45) in
  [
    ("a0_db", a0_db);
    ("gbw_mhz", gbw /. 1e6);
    ("pm_deg", pm);
    ("slew_vus", slew /. 1e6);
    ("power_mw", power *. 1e3);
    ("swing_v", swing);
    ("headroom_v", headroom);
  ]
