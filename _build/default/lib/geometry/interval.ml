type t = { lo : int; hi : int }

let make lo hi =
  if hi < lo then invalid_arg "Interval.make: hi < lo";
  { lo; hi }

let empty = { lo = 0; hi = 0 }
let is_empty i = i.hi <= i.lo
let length i = if is_empty i then 0 else i.hi - i.lo
let contains i p = i.lo <= p && p < i.hi
let overlaps a b = max a.lo b.lo < min a.hi b.hi

let intersect a b =
  let lo = max a.lo b.lo and hi = min a.hi b.hi in
  if hi <= lo then empty else { lo; hi }

let hull a b =
  if is_empty a then b
  else if is_empty b then a
  else { lo = min a.lo b.lo; hi = max a.hi b.hi }

let shift i d = { lo = i.lo + d; hi = i.hi + d }

(* Reflecting [lo, hi) about axis2/2 maps a point p to axis2 - p, so the
   reflected interval is [axis2 - hi, axis2 - lo). *)
let mirror ~axis2 i = { lo = axis2 - i.hi; hi = axis2 - i.lo }

let compare a b =
  let c = Int.compare a.lo b.lo in
  if c <> 0 then c else Int.compare a.hi b.hi

let equal a b = compare a b = 0
let pp ppf i = Format.fprintf ppf "[%d,%d)" i.lo i.hi
