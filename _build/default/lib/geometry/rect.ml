type t = { x : int; y : int; w : int; h : int }

let make ~x ~y ~w ~h =
  if w < 0 || h < 0 then invalid_arg "Rect.make: negative dimension";
  { x; y; w; h }

let at_origin ~w ~h = make ~x:0 ~y:0 ~w ~h
let area r = r.w * r.h
let x_span r = Interval.make r.x (r.x + r.w)
let y_span r = Interval.make r.y (r.y + r.h)
let x_max r = r.x + r.w
let y_max r = r.y + r.h
let center2 r = (2 * r.x + r.w, 2 * r.y + r.h)

let overlaps a b =
  Interval.overlaps (x_span a) (x_span b)
  && Interval.overlaps (y_span a) (y_span b)

let intersection_area a b =
  Interval.length (Interval.intersect (x_span a) (x_span b))
  * Interval.length (Interval.intersect (y_span a) (y_span b))

let contains outer inner =
  outer.x <= inner.x
  && outer.y <= inner.y
  && x_max inner <= x_max outer
  && y_max inner <= y_max outer

let is_degenerate r = r.w = 0 || r.h = 0

let bbox a b =
  if is_degenerate a then b
  else if is_degenerate b then a
  else
    let x = min a.x b.x and y = min a.y b.y in
    { x; y; w = max (x_max a) (x_max b) - x; h = max (y_max a) (y_max b) - y }

let bbox_of_list = function
  | [] -> invalid_arg "Rect.bbox_of_list: empty list"
  | r :: rest -> List.fold_left bbox r rest

let translate r ~dx ~dy = { r with x = r.x + dx; y = r.y + dy }
let mirror_y ~axis2 r = { r with x = axis2 - r.x - r.w }
let mirror_x ~axis2 r = { r with y = axis2 - r.y - r.h }

let oriented o r =
  let w, h = Orientation.dims o ~w:r.w ~h:r.h in
  { r with w; h }

let compare a b =
  let c = Int.compare a.x b.x in
  if c <> 0 then c
  else
    let c = Int.compare a.y b.y in
    if c <> 0 then c
    else
      let c = Int.compare a.w b.w in
      if c <> 0 then c else Int.compare a.h b.h

let equal a b = compare a b = 0
let pp ppf r = Format.fprintf ppf "@[%dx%d@@(%d,%d)@]" r.w r.h r.x r.y
