type segment = { x0 : int; x1 : int; y : int }

(* Invariant: segments sorted by x0, pairwise disjoint, all with y > 0
   and x1 > x0; consecutive segments that touch have different heights
   (maximally merged). Height is 0 everywhere not covered. *)
type t = segment list

let empty = []

let normalize segs =
  let segs = List.filter (fun s -> s.y > 0 && s.x1 > s.x0) segs in
  let segs = List.sort (fun a b -> Int.compare a.x0 b.x0) segs in
  let rec merge = function
    | a :: b :: rest when a.x1 = b.x0 && a.y = b.y ->
        merge ({ x0 = a.x0; x1 = b.x1; y = a.y } :: rest)
    | a :: rest -> a :: merge rest
    | [] -> []
  in
  merge segs

let of_segments segs =
  let sorted = List.sort (fun a b -> Int.compare a.x0 b.x0) segs in
  let rec check = function
    | a :: (b :: _ as rest) ->
        if a.x1 > b.x0 then invalid_arg "Contour.of_segments: overlap";
        check rest
    | [ _ ] | [] -> ()
  in
  check sorted;
  normalize sorted

let height_at c x =
  let seg = List.find_opt (fun s -> s.x0 <= x && x < s.x1) c in
  match seg with Some s -> s.y | None -> 0

let max_height c ~x0 ~x1 =
  if x1 <= x0 then 0
  else
    List.fold_left
      (fun acc s -> if max s.x0 x0 < min s.x1 x1 then max acc s.y else acc)
      0 c

let raise_to c ~x0 ~x1 ~y =
  if x1 <= x0 then c
  else
    (* Clip every existing segment against [x0, x1), then insert the new
       plateau. *)
    let clipped =
      List.concat_map
        (fun s ->
          let left =
            if s.x0 < x0 then [ { s with x1 = min s.x1 x0 } ] else []
          in
          let right =
            if s.x1 > x1 then [ { s with x0 = max s.x0 x1 } ] else []
          in
          left @ right)
        c
    in
    normalize ({ x0; x1; y } :: clipped)

let drop c ~x ~w ~h =
  let y = max_height c ~x0:x ~x1:(x + w) in
  (y, raise_to c ~x0:x ~x1:(x + w) ~y:(y + h))

let segments c = c
let max_y c = List.fold_left (fun acc s -> max acc s.y) 0 c

let shift c ~dx ~dy =
  List.iter
    (fun s ->
      if s.x0 + dx < 0 then invalid_arg "Contour.shift: negative x")
    c;
  normalize
    (List.map (fun s -> { x0 = s.x0 + dx; x1 = s.x1 + dx; y = max 0 (s.y + dy) }) c)

let equal a b = a = b

let pp ppf c =
  Format.fprintf ppf "@[<h>%a@]"
    (Format.pp_print_list
       ~pp_sep:(fun ppf () -> Format.pp_print_string ppf " ")
       (fun ppf s -> Format.fprintf ppf "[%d,%d)@%d" s.x0 s.x1 s.y))
    c
