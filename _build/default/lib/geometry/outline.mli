(** Rectilinear outlines of rectangle sets.

    Sub-circuits placed as units (HB*-tree hierarchy nodes, proximity
    groups) are not forced to rectangular outlines — the survey notes
    that non-rectangular outlines improve area utilization (Fig. 3(c)).
    This module derives the geometric summaries the placers need from a
    set of placed rectangles: bounding box, covered area, top profile
    and connectivity of the union. *)

val bounding_box : Rect.t list -> Rect.t
(** Raises [Invalid_argument] on the empty list. *)

val covered_area : Rect.t list -> int
(** Area of the union (overlaps counted once), by coordinate-compressed
    sweep. *)

val dead_area : Rect.t list -> int
(** Bounding-box area minus covered area. *)

val top_profile : Rect.t list -> Contour.segment list
(** Height of the union's skyline measured from y = 0, as maximal
    segments over the x extent of the set. Rectangles are assumed to sit
    at non-negative coordinates. *)

val connected : Rect.t list -> bool
(** Is the union of the (closed) rectangles a single connected region?
    Rectangles touching along an edge of positive length count as
    connected; corner contact does not. [true] for the empty list. *)
