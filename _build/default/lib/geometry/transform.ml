type placed = { cell : int; rect : Rect.t; orient : Orientation.t }

let place ~cell ~x ~y ~w ~h ~orient =
  let w, h = Orientation.dims orient ~w ~h in
  { cell; rect = Rect.make ~x ~y ~w ~h; orient }

let mirror_y ~axis2 p =
  {
    p with
    rect = Rect.mirror_y ~axis2 p.rect;
    orient = Orientation.mirror_y p.orient;
  }

let translate p ~dx ~dy = { p with rect = Rect.translate p.rect ~dx ~dy }

let pp ppf p =
  Format.fprintf ppf "@[cell %d %a %a@]" p.cell Rect.pp p.rect Orientation.pp
    p.orient
