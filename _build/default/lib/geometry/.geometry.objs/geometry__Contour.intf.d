lib/geometry/contour.mli: Format
