lib/geometry/orientation.mli: Format
