lib/geometry/contour.ml: Format Int List
