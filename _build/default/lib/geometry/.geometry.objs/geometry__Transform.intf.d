lib/geometry/transform.mli: Format Orientation Rect
