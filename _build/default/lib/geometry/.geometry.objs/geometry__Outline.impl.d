lib/geometry/outline.ml: Array Contour Fun Int Interval List Rect
