lib/geometry/orientation.ml: Format
