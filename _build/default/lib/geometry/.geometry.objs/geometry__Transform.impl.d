lib/geometry/transform.ml: Format Orientation Rect
