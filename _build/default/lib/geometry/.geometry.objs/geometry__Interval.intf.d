lib/geometry/interval.mli: Format
