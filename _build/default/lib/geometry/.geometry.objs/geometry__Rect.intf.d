lib/geometry/rect.mli: Format Interval Orientation
