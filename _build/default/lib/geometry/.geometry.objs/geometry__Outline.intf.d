lib/geometry/outline.mli: Contour Rect
