lib/geometry/guard_ring.ml: Array Int List Rect
