lib/geometry/interval.ml: Format Int
