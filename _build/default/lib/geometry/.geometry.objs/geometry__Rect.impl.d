lib/geometry/rect.ml: Format Int Interval List Orientation
