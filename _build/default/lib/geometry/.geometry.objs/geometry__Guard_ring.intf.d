lib/geometry/guard_ring.mli: Rect
