type t = R0 | R90 | R180 | R270 | MY | MY90 | MX | MX90

let all = [ R0; R90; R180; R270; MY; MY90; MX; MX90 ]

let swaps_dims = function
  | R90 | R270 | MY90 | MX90 -> true
  | R0 | R180 | MY | MX -> false

let dims o ~w ~h = if swaps_dims o then (h, w) else (w, h)

let mirror_y = function
  | R0 -> MY
  | MY -> R0
  | R180 -> MX
  | MX -> R180
  | R90 -> MX90
  | MX90 -> R90
  | R270 -> MY90
  | MY90 -> R270

let rotate90 = function
  | R0 -> R90
  | R90 -> R180
  | R180 -> R270
  | R270 -> R0
  | MY -> MY90
  | MY90 -> MX
  | MX -> MX90
  | MX90 -> MY

let equal (a : t) (b : t) = a = b

let to_string = function
  | R0 -> "R0"
  | R90 -> "R90"
  | R180 -> "R180"
  | R270 -> "R270"
  | MY -> "MY"
  | MY90 -> "MY90"
  | MX -> "MX"
  | MX90 -> "MX90"

let of_string = function
  | "R0" -> Some R0
  | "R90" -> Some R90
  | "R180" -> Some R180
  | "R270" -> Some R270
  | "MY" -> Some MY
  | "MY90" -> Some MY90
  | "MX" -> Some MX
  | "MX90" -> Some MX90
  | _ -> None

let pp ppf o = Format.pp_print_string ppf (to_string o)
