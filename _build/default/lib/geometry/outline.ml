let bounding_box rects = Rect.bbox_of_list rects

(* Union area by sweeping over compressed x-coordinates: within each x
   slab, sum the union of y-intervals of the rectangles covering it. *)
let covered_area rects =
  let rects = List.filter (fun r -> Rect.area r > 0) rects in
  match rects with
  | [] -> 0
  | _ ->
      let xs =
        List.concat_map (fun (r : Rect.t) -> [ r.x; Rect.x_max r ]) rects
        |> List.sort_uniq Int.compare
      in
      let rec slabs acc = function
        | x0 :: (x1 :: _ as rest) ->
            let covering =
              List.filter
                (fun (r : Rect.t) -> r.x <= x0 && Rect.x_max r >= x1)
                rects
            in
            let spans =
              List.map Rect.y_span covering
              |> List.sort Interval.compare
            in
            let rec union_len cur_lo cur_hi acc = function
              | [] -> acc + (cur_hi - cur_lo)
              | (i : Interval.t) :: rest ->
                  if i.lo > cur_hi then
                    union_len i.lo i.hi (acc + (cur_hi - cur_lo)) rest
                  else union_len cur_lo (max cur_hi i.hi) acc rest
            in
            let len =
              match spans with
              | [] -> 0
              | (i : Interval.t) :: rest -> union_len i.lo i.hi 0 rest
            in
            slabs (acc + (len * (x1 - x0))) rest
        | [ _ ] | [] -> acc
      in
      slabs 0 xs

let dead_area rects =
  match List.filter (fun r -> Rect.area r > 0) rects with
  | [] -> 0
  | rs -> Rect.area (bounding_box rs) - covered_area rs

let top_profile rects =
  let rects = List.filter (fun r -> Rect.area r > 0) rects in
  match rects with
  | [] -> []
  | _ ->
      let xs =
        List.concat_map (fun (r : Rect.t) -> [ r.x; Rect.x_max r ]) rects
        |> List.sort_uniq Int.compare
      in
      let rec slabs = function
        | x0 :: (x1 :: _ as rest) ->
            let top =
              List.fold_left
                (fun acc (r : Rect.t) ->
                  if r.x <= x0 && Rect.x_max r >= x1 then
                    max acc (Rect.y_max r)
                  else acc)
                0 rects
            in
            { Contour.x0; x1; y = top } :: slabs rest
        | [ _ ] | [] -> []
      in
      let segs = List.filter (fun (s : Contour.segment) -> s.y > 0) (slabs xs) in
      (* merge equal-height neighbours *)
      let rec merge = function
        | (a : Contour.segment) :: (b : Contour.segment) :: rest
          when a.x1 = b.x0 && a.y = b.y ->
            merge ({ a with x1 = b.x1 } :: rest)
        | a :: rest -> a :: merge rest
        | [] -> []
      in
      merge segs

(* Edge-adjacency: positive-length shared boundary. Two rects share an
   edge iff they touch or overlap in one axis with positive overlap in
   the other. *)
let adjacent (a : Rect.t) (b : Rect.t) =
  let x_ov =
    Interval.length (Interval.intersect (Rect.x_span a) (Rect.x_span b))
  in
  let y_ov =
    Interval.length (Interval.intersect (Rect.y_span a) (Rect.y_span b))
  in
  let x_touch = Rect.x_max a = b.x || Rect.x_max b = a.x in
  let y_touch = Rect.y_max a = b.y || Rect.y_max b = a.y in
  Rect.overlaps a b || (x_touch && y_ov > 0) || (y_touch && x_ov > 0)

let connected rects =
  match Array.of_list rects with
  | [||] -> true
  | arr ->
      let n = Array.length arr in
      let seen = Array.make n false in
      let rec visit i =
        if not seen.(i) then begin
          seen.(i) <- true;
          for j = 0 to n - 1 do
            if (not seen.(j)) && adjacent arr.(i) arr.(j) then visit j
          done
        end
      in
      visit 0;
      Array.for_all Fun.id seen
