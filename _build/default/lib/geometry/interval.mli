(** Closed-open integer intervals [\[lo, hi)] on a layout grid.

    Intervals are the 1-D building block for rectangle overlap tests,
    contour segments and symmetry-axis arithmetic. An interval is empty
    when [hi <= lo]. *)

type t = private { lo : int; hi : int }

val make : int -> int -> t
(** [make lo hi] is the interval [\[lo, hi)]. Raises [Invalid_argument]
    if [hi < lo]. *)

val empty : t
(** The canonical empty interval [\[0, 0)]. *)

val is_empty : t -> bool

val length : t -> int
(** [length i] is [hi - lo]; [0] for empty intervals. *)

val contains : t -> int -> bool
(** [contains i p] is [true] iff [lo <= p < hi]. *)

val overlaps : t -> t -> bool
(** [overlaps a b] is [true] iff the interiors intersect, i.e. the
    intersection has positive length. Touching intervals do not overlap. *)

val intersect : t -> t -> t
(** [intersect a b] is the (possibly empty) common part. *)

val hull : t -> t -> t
(** [hull a b] is the smallest interval containing both; empty intervals
    are neutral. *)

val shift : t -> int -> t
(** [shift i d] translates both ends by [d]. *)

val mirror : axis2:int -> t -> t
(** [mirror ~axis2 i] reflects [i] about the vertical line at coordinate
    [axis2 / 2]. The doubled axis [axis2] keeps everything integral when
    the true axis falls on a half-grid position. *)

val compare : t -> t -> int
(** Lexicographic order on [(lo, hi)]. *)

val equal : t -> t -> bool
val pp : Format.formatter -> t -> unit
