(** Guard rings around cell groups.

    Proximity-constrained sub-circuits share a substrate well and are
    "surrounded by a common guard ring" (survey §III-A, Fig. 3(c)).
    Given the placed rectangles of a group, {!generate} builds the ring
    as a set of rectangles covering the region between the group's
    outline inflated by [clearance] and by [clearance + thickness] —
    i.e. a closed rectilinear band hugging the (possibly
    non-rectangular) group shape.

    The construction is exact over a compressed grid: the ring never
    overlaps the protected cells, and every 4-connected path from the
    group to the outside world crosses the ring (tested by flood
    fill). *)

val generate :
  clearance:int -> thickness:int -> Rect.t list -> Rect.t list
(** Raises [Invalid_argument] on an empty group or non-positive
    [thickness]; [clearance] must be non-negative. The input rectangles
    should be pairwise non-overlapping placed cells (overlaps are
    tolerated). *)

val well : clearance:int -> Rect.t list -> Rect.t list
(** The shared substrate/well region of a proximity group: the union of
    the cells inflated by [clearance], decomposed into disjoint
    rectangles. Every input cell is contained in the union (tested). *)

val encloses : ring:Rect.t list -> Rect.t list -> bool
(** Does the ring seal the cells off — no 4-connected free path from
    any cell to the bounding region's border? (The property {!generate}
    guarantees; exported for tests and verification of hand-made
    rings.) *)
