(** Cell orientations.

    Analog placers flip and rotate device cells to improve matching and
    routing. We support the eight layout orientations (four rotations,
    each optionally mirrored). For packing purposes only two facts
    matter: whether width and height are swapped, and how the cell's
    internal features are mirrored (relevant for symmetric device pairs,
    which must use mirrored orientations of one another). *)

type t =
  | R0    (** as drawn *)
  | R90   (** rotated 90 degrees counter-clockwise *)
  | R180
  | R270
  | MY    (** mirrored about the vertical (Y) axis *)
  | MY90  (** mirrored about Y, then rotated 90 *)
  | MX    (** mirrored about the horizontal (X) axis *)
  | MX90

val all : t list
(** All eight orientations, [R0] first. *)

val swaps_dims : t -> bool
(** [true] iff the orientation exchanges width and height. *)

val dims : t -> w:int -> h:int -> int * int
(** [dims o ~w ~h] is the bounding-box size of a [w]x[h] cell under [o]. *)

val mirror_y : t -> t
(** Compose with a mirror about the vertical axis — the orientation a
    symmetric counterpart must adopt so that the pair is a true mirror
    image. Involutive. *)

val rotate90 : t -> t
(** Compose with a further 90-degree counter-clockwise rotation. *)

val equal : t -> t -> bool
val to_string : t -> string
val of_string : string -> t option
val pp : Format.formatter -> t -> unit
