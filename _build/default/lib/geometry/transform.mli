(** Rigid placements of oriented cells.

    A [placed] value records where a cell of intrinsic size [w]x[h]
    ended up: its orientation and the lower-left corner of its oriented
    bounding box. This is the common currency between the topological
    representations (sequence-pair, B*-trees, shape functions) and the
    constraint checkers. *)

type placed = {
  cell : int;  (** index of the cell in its circuit's module table *)
  rect : Rect.t;  (** oriented bounding box, as placed *)
  orient : Orientation.t;
}

val place : cell:int -> x:int -> y:int -> w:int -> h:int ->
  orient:Orientation.t -> placed
(** [w] and [h] are the intrinsic (unoriented) cell dimensions; the
    stored rectangle uses the oriented ones. *)

val mirror_y : axis2:int -> placed -> placed
(** Mirror a placed cell about the vertical line at [axis2 / 2]:
    position is reflected and the orientation composed with [MY]. *)

val translate : placed -> dx:int -> dy:int -> placed
val pp : Format.formatter -> placed -> unit
