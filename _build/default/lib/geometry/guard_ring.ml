(* All operations run on a compressed grid: the distinct x (resp. y)
   coordinates of every rectangle of interest cut the plane into slabs;
   region membership is constant inside each slab cell, so boolean
   operations and flood fills are exact. *)

let inflate d (r : Rect.t) =
  Rect.make ~x:(r.Rect.x - d) ~y:(r.Rect.y - d) ~w:(r.Rect.w + (2 * d))
    ~h:(r.Rect.h + (2 * d))

let compress coords =
  let sorted = List.sort_uniq Int.compare coords in
  Array.of_list sorted

type grid = { xs : int array; ys : int array; cell : bool array array }
(* cell.(i).(j) covers [xs.(i), xs.(i+1)) x [ys.(j), ys.(j+1)) *)

let mark grid rects =
  let covers (r : Rect.t) x0 x1 y0 y1 =
    r.Rect.x <= x0 && Rect.x_max r >= x1 && r.Rect.y <= y0 && Rect.y_max r >= y1
  in
  for i = 0 to Array.length grid.xs - 2 do
    for j = 0 to Array.length grid.ys - 2 do
      if
        List.exists
          (fun r ->
            covers r grid.xs.(i) grid.xs.(i + 1) grid.ys.(j) grid.ys.(j + 1))
          rects
      then grid.cell.(i).(j) <- true
    done
  done

let make_grid coord_rects =
  let xs =
    compress
      (List.concat_map (fun (r : Rect.t) -> [ r.Rect.x; Rect.x_max r ]) coord_rects)
  in
  let ys =
    compress
      (List.concat_map (fun (r : Rect.t) -> [ r.Rect.y; Rect.y_max r ]) coord_rects)
  in
  {
    xs;
    ys;
    cell = Array.make_matrix (max 1 (Array.length xs - 1)) (max 1 (Array.length ys - 1)) false;
  }

(* Greedy decomposition of a marked cell set into maximal horizontal
   strips merged vertically. *)
let rects_of_cells grid marked =
  let nx = Array.length grid.xs - 1 and ny = Array.length grid.ys - 1 in
  let taken = Array.make_matrix nx ny false in
  let out = ref [] in
  for j = 0 to ny - 1 do
    for i = 0 to nx - 1 do
      if marked.(i).(j) && not (taken.(i).(j)) then begin
        (* grow right *)
        let i1 = ref i in
        while
          !i1 + 1 < nx && marked.(!i1 + 1).(j) && not taken.(!i1 + 1).(j)
        do
          incr i1
        done;
        (* grow up while the whole strip is markable *)
        let j1 = ref j in
        let strip_ok jj =
          let ok = ref true in
          for k = i to !i1 do
            if (not marked.(k).(jj)) || taken.(k).(jj) then ok := false
          done;
          !ok
        in
        while !j1 + 1 < ny && strip_ok (!j1 + 1) do
          incr j1
        done;
        for k = i to !i1 do
          for l = j to !j1 do
            taken.(k).(l) <- true
          done
        done;
        out :=
          Rect.make ~x:grid.xs.(i) ~y:grid.ys.(j)
            ~w:(grid.xs.(!i1 + 1) - grid.xs.(i))
            ~h:(grid.ys.(!j1 + 1) - grid.ys.(j))
          :: !out
      end
    done
  done;
  !out

let well ~clearance rects =
  if rects = [] then invalid_arg "Guard_ring.well: empty group";
  if clearance < 0 then invalid_arg "Guard_ring.well: clearance";
  let inflated = List.map (inflate clearance) rects in
  let grid = make_grid inflated in
  mark grid inflated;
  rects_of_cells grid grid.cell

let generate ~clearance ~thickness rects =
  if rects = [] then invalid_arg "Guard_ring.generate: empty group";
  if thickness <= 0 then invalid_arg "Guard_ring.generate: thickness";
  if clearance < 0 then invalid_arg "Guard_ring.generate: clearance";
  let inner = List.map (inflate clearance) rects in
  let outer = List.map (inflate (clearance + thickness)) rects in
  let grid = make_grid (inner @ outer) in
  let inner_grid = { grid with cell = Array.map Array.copy grid.cell } in
  mark inner_grid inner;
  let outer_grid = { grid with cell = Array.map Array.copy grid.cell } in
  mark outer_grid outer;
  let nx = Array.length grid.xs - 1 and ny = Array.length grid.ys - 1 in
  let ring = Array.make_matrix nx ny false in
  for i = 0 to nx - 1 do
    for j = 0 to ny - 1 do
      ring.(i).(j) <- outer_grid.cell.(i).(j) && not inner_grid.cell.(i).(j)
    done
  done;
  rects_of_cells grid ring

let encloses ~ring cells =
  match cells with
  | [] -> true
  | _ ->
      (* compressed grid over everything plus a border frame *)
      let all = ring @ cells in
      let bbox = Rect.bbox_of_list all in
      let frame = inflate 1 bbox in
      let grid = make_grid (frame :: all) in
      let ring_grid = { grid with cell = Array.map Array.copy grid.cell } in
      mark ring_grid ring;
      let cell_grid = { grid with cell = Array.map Array.copy grid.cell } in
      mark cell_grid cells;
      let nx = Array.length grid.xs - 1 and ny = Array.length grid.ys - 1 in
      (* flood fill the free region from the frame border *)
      let reached = Array.make_matrix nx ny false in
      let stack = ref [] in
      for i = 0 to nx - 1 do
        stack := (i, 0) :: (i, ny - 1) :: !stack
      done;
      for j = 0 to ny - 1 do
        stack := (0, j) :: (nx - 1, j) :: !stack
      done;
      let rec flood () =
        match !stack with
        | [] -> ()
        | (i, j) :: rest ->
            stack := rest;
            if
              i >= 0 && i < nx && j >= 0 && j < ny
              && (not reached.(i).(j))
              && not ring_grid.cell.(i).(j)
            then begin
              reached.(i).(j) <- true;
              stack :=
                (i + 1, j) :: (i - 1, j) :: (i, j + 1) :: (i, j - 1) :: !stack
            end;
            flood ()
      in
      flood ();
      (* sealed iff no protected cell area is reached from outside *)
      let leak = ref false in
      for i = 0 to nx - 1 do
        for j = 0 to ny - 1 do
          if cell_grid.cell.(i).(j) && reached.(i).(j) then leak := true
        done
      done;
      not !leak
