(** Axis-aligned rectangles on an integer layout grid.

    A rectangle is the placed footprint of a device cell or of a
    sub-circuit bounding box: origin at the lower-left corner, extending
    [w] to the right and [h] upward. Widths and heights are
    non-negative. *)

type t = { x : int; y : int; w : int; h : int }

val make : x:int -> y:int -> w:int -> h:int -> t
(** Raises [Invalid_argument] on negative [w] or [h]. *)

val at_origin : w:int -> h:int -> t

val area : t -> int

val x_span : t -> Interval.t
(** Horizontal extent [\[x, x+w)]. *)

val y_span : t -> Interval.t
(** Vertical extent [\[y, y+h)]. *)

val x_max : t -> int
(** Right edge, [x + w]. *)

val y_max : t -> int
(** Top edge, [y + h]. *)

val center2 : t -> int * int
(** Doubled center [(2*cx, 2*cy)] — doubling keeps half-grid centers
    integral, which matters for common-centroid checks. *)

val overlaps : t -> t -> bool
(** [true] iff the interiors intersect; edge-sharing rectangles do not
    overlap. *)

val intersection_area : t -> t -> int

val contains : t -> t -> bool
(** [contains outer inner] — is [inner] entirely within [outer]
    (boundaries may touch)? *)

val bbox : t -> t -> t
(** Smallest rectangle covering both. Zero-area rectangles are neutral. *)

val bbox_of_list : t list -> t
(** Bounding box of a non-empty list; raises [Invalid_argument] on []. *)

val translate : t -> dx:int -> dy:int -> t

val mirror_y : axis2:int -> t -> t
(** Reflect about the vertical line at [axis2 / 2] (doubled coordinate). *)

val mirror_x : axis2:int -> t -> t
(** Reflect about the horizontal line at [axis2 / 2]. *)

val oriented : Orientation.t -> t -> t
(** [oriented o r] keeps the origin of [r] and gives it the bounding
    dimensions of the cell under orientation [o]. *)

val compare : t -> t -> int
val equal : t -> t -> bool
val pp : Format.formatter -> t -> unit
