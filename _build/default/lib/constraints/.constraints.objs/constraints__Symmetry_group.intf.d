lib/constraints/symmetry_group.mli: Format Netlist
