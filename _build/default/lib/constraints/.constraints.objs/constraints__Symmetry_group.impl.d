lib/constraints/symmetry_group.ml: Format Int List Netlist
