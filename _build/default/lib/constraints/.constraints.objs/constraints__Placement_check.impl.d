lib/constraints/placement_check.ml: Array Format Geometry List Outline Rect Result Symmetry_group Transform
