lib/constraints/placement_check.mli: Format Geometry Symmetry_group
