lib/anneal/sa.mli: Prelude Schedule
