lib/anneal/sa.ml: Float Prelude Schedule
