lib/anneal/schedule.mli:
