lib/anneal/schedule.ml: Float
