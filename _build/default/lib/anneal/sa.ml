type 'a problem = {
  init : 'a;
  neighbor : Prelude.Rng.t -> 'a -> 'a;
  cost : 'a -> float;
}

type params = {
  initial_temperature : float option;
  final_temperature : float;
  moves_per_round : int;
  schedule : Schedule.t;
  frozen_rounds : int;
  max_rounds : int;
}

let default_params ~n =
  {
    initial_temperature = None;
    final_temperature = 1e-3;
    moves_per_round = max 64 (8 * n);
    schedule = Schedule.default;
    frozen_rounds = 5;
    max_rounds = 500;
  }

type 'a outcome = {
  best : 'a;
  best_cost : float;
  rounds : int;
  accepted : int;
  evaluated : int;
}

let estimate_t0 ~rng problem ~samples =
  let state = ref problem.init in
  let cost = ref (problem.cost !state) in
  let deltas = ref [] in
  for _ = 1 to samples do
    let next = problem.neighbor rng !state in
    let c = problem.cost next in
    deltas := Float.abs (c -. !cost) :: !deltas;
    state := next;
    cost := c
  done;
  let sd = Prelude.Stats.stddev !deltas in
  Float.max 1e-6 (if sd > 0.0 then sd else Prelude.Stats.mean !deltas)

let run ~rng params problem =
  let t0 =
    match params.initial_temperature with
    | Some t -> t
    | None -> 20.0 *. estimate_t0 ~rng problem ~samples:64
  in
  let current = ref problem.init in
  let current_cost = ref (problem.cost !current) in
  let best = ref !current and best_cost = ref !current_cost in
  let accepted_total = ref 0 and evaluated = ref 0 in
  let rec rounds temperature round frozen =
    if
      round >= params.max_rounds
      || temperature <= params.final_temperature
      || frozen >= params.frozen_rounds
    then round
    else begin
      let accepted = ref 0 and improved = ref false in
      for _ = 1 to params.moves_per_round do
        let next = problem.neighbor rng !current in
        let c = problem.cost next in
        incr evaluated;
        let delta = c -. !current_cost in
        let accept =
          delta <= 0.0
          || Prelude.Rng.float rng 1.0 < exp (-.delta /. temperature)
        in
        if accept then begin
          current := next;
          current_cost := c;
          incr accepted;
          incr accepted_total;
          if c < !best_cost then begin
            best := next;
            best_cost := c;
            improved := true
          end
        end
      done;
      let acceptance =
        float_of_int !accepted /. float_of_int params.moves_per_round
      in
      let temperature' =
        Schedule.next params.schedule ~temperature ~acceptance
      in
      (* frozen = the walk has effectively stopped moving AND stopped
         improving; high-temperature rounds without a new global best
         are normal and must not terminate the run *)
      let frozen' =
        if acceptance < 0.02 && not !improved then frozen + 1 else 0
      in
      rounds temperature' (round + 1) frozen'
    end
  in
  let total_rounds = rounds t0 0 0 in
  {
    best = !best;
    best_cost = !best_cost;
    rounds = total_rounds;
    accepted = !accepted_total;
    evaluated = !evaluated;
  }
