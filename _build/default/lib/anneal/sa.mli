(** Generic simulated-annealing engine.

    State type, move generator and cost function are supplied by the
    caller; the engine owns the control loop: Metropolis acceptance,
    temperature schedule, best-so-far tracking and freezing detection.
    All placers in this repository (sequence-pair, B*-tree, HB*-tree,
    and the layout-aware sizing optimizer of §V) instantiate it. *)

type 'a problem = {
  init : 'a;
  neighbor : Prelude.Rng.t -> 'a -> 'a;
  cost : 'a -> float;
}

type params = {
  initial_temperature : float option;
      (** [None]: estimated from the cost spread of random moves *)
  final_temperature : float;
  moves_per_round : int;  (** Metropolis steps at each temperature *)
  schedule : Schedule.t;
  frozen_rounds : int;
      (** stop after this many consecutive rounds in which the walk is
          effectively frozen: acceptance ratio below 2% and no new
          best found *)
  max_rounds : int;
}

val default_params : n:int -> params
(** Sensible defaults scaled to problem size [n] (moves per round
    [max 64 (8n)]). *)

type 'a outcome = {
  best : 'a;
  best_cost : float;
  rounds : int;
  accepted : int;
  evaluated : int;
}

val run : rng:Prelude.Rng.t -> params -> 'a problem -> 'a outcome

val estimate_t0 : rng:Prelude.Rng.t -> 'a problem -> samples:int -> float
(** Standard deviation of the cost change over random moves, the usual
    starting temperature heuristic. *)
