(** Lee-style maze routing.

    Breadth-first wave expansion on the grid: {!path} finds a shortest
    unblocked Manhattan path between two points; {!route_net} connects
    a terminal set by growing a Steiner-ish tree — each further
    terminal is connected by a shortest path to the {e whole} tree
    built so far (the classic multi-terminal extension of Lee's
    algorithm). *)

val path :
  Grid.t -> src:Grid.point list -> dst:Grid.point list -> Grid.point list option
(** Shortest path from any source to any destination; sources and
    destinations may be blocked (pins on used tracks are still
    reachable endpoints), intermediate cells may not. Returns the
    full point sequence including endpoints. *)

val route_net :
  Grid.t -> terminals:Grid.point list -> Grid.point list option
(** The union of grid cells of a tree connecting all terminals, or
    [None] if some terminal cannot be reached. Does not modify the
    grid — callers decide whether to claim the cells. Terminals outside
    the grid are clamped to its border. *)
