(** Net-by-net global routing with mirrored symmetric nets (§II:
    "symmetric placement (and routing, as well)" matches the
    layout-induced parasitics of the two differential half-circuits).

    Nets are routed shortest-first by Lee maze expansion; each finished
    route claims its tracks. Nets recognized as mirror twins — their
    pin sets map onto each other under the symmetry group's axis — are
    routed as a pair: the reference net is routed, its mirror image is
    claimed for the twin, so both halves see {e identical} wire lengths
    and topology by construction. *)

type route = { net : string; points : Grid.point list }

type result = {
  routed : route list;
  failed : string list;  (** nets with no legal path left *)
  wirelength : int;  (** total grid cells used *)
  mirrored_pairs : (string * string) list;
  grid : Grid.t;  (** final occupancy *)
}

val mirror_twins :
  axis2:int ->
  pitch:int ->
  margin:int ->
  Placer.Placement.t ->
  (string * string) list
(** Net pairs whose pin centers are mirror images about the axis
    (doubled layout coordinate [axis2]), up to grid rounding. *)

val route_all :
  ?pitch:int ->
  ?margin:int ->
  ?symmetric:Constraints.Symmetry_group.t list ->
  Placer.Placement.t ->
  result
(** Route every net of the placement's circuit (pins at module
    centers). [symmetric] groups contribute their placement axes; twin
    nets across each axis are routed mirrored. Default [pitch] 20 grid
    units, [margin] 4 tracks. *)

val is_mirror_route :
  axis2_grid:int -> Grid.point list -> Grid.point list -> bool
(** Do two routes map onto each other under grid-column reflection
    [c -> axis2_grid - c]? (Used by tests.) *)
