type t = { cols : int; rows : int; used : Bytes.t }
type point = int * int

let create ~cols ~rows =
  if cols <= 0 || rows <= 0 then invalid_arg "Grid.create: non-positive size";
  { cols; rows; used = Bytes.make (cols * rows) '\000' }

let cols t = t.cols
let rows t = t.rows
let idx t (c, r) = (r * t.cols) + c
let in_bounds t (c, r) = c >= 0 && c < t.cols && r >= 0 && r < t.rows
let blocked t p = Bytes.get t.used (idx t p) <> '\000'

let block t p = if in_bounds t p then Bytes.set t.used (idx t p) '\001'
let block_many t ps = List.iter (block t) ps
let copy t = { t with used = Bytes.copy t.used }

let snap ~pitch ~margin (x, y) =
  ((x + (pitch / 2)) / pitch + margin, (y + (pitch / 2)) / pitch + margin)

let of_placement ~pitch ~margin placement =
  let w = Placer.Placement.width placement in
  let h = Placer.Placement.height placement in
  create
    ~cols:((w / pitch) + 1 + (2 * margin))
    ~rows:((h / pitch) + 1 + (2 * margin))

let occupancy t =
  let total = t.cols * t.rows in
  let used = ref 0 in
  Bytes.iter (fun c -> if c <> '\000' then incr used) t.used;
  float_of_int !used /. float_of_int total
