lib/route/maze.ml: Array Grid Hashtbl List Option Queue
