lib/route/grid.mli: Placer
