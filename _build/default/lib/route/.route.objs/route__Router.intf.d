lib/route/router.mli: Constraints Grid Placer
