lib/route/grid.ml: Bytes List Placer
