lib/route/router.ml: Constraints Geometry Grid Hashtbl Int List Maze Netlist Placer Rect
