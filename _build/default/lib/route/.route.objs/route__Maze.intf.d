lib/route/maze.mli: Grid
