let neighbors (c, r) = [ (c + 1, r); (c - 1, r); (c, r + 1); (c, r - 1) ]

let path grid ~src ~dst =
  let cols = Grid.cols grid and rows = Grid.rows grid in
  let parent = Array.make (cols * rows) (-2) in
  (* -2 unvisited, -1 source, otherwise predecessor index *)
  let idx (c, r) = (r * cols) + c in
  let of_idx i = (i mod cols, i / cols) in
  let dst_set = Hashtbl.create 8 in
  List.iter
    (fun p -> if Grid.in_bounds grid p then Hashtbl.replace dst_set (idx p) ())
    dst;
  let queue = Queue.create () in
  List.iter
    (fun p ->
      if Grid.in_bounds grid p && parent.(idx p) = -2 then begin
        parent.(idx p) <- -1;
        Queue.add p queue
      end)
    src;
  let found = ref None in
  let rec walk_back acc i =
    let acc = of_idx i :: acc in
    if parent.(i) = -1 then acc else walk_back acc parent.(i)
  in
  (try
     while not (Queue.is_empty queue) do
       let p = Queue.take queue in
       let pi = idx p in
       if Hashtbl.mem dst_set pi then begin
         found := Some (List.rev (walk_back [] pi));
         raise Exit
       end;
       List.iter
         (fun q ->
           if Grid.in_bounds grid q && parent.(idx q) = -2 then
             (* intermediate cells must be free; destinations are
                always enterable *)
             if Hashtbl.mem dst_set (idx q) || not (Grid.blocked grid q) then begin
               parent.(idx q) <- pi;
               Queue.add q queue
             end)
         (neighbors p)
     done
   with Exit -> ());
  Option.map List.rev !found

let clamp grid (c, r) =
  (max 0 (min (Grid.cols grid - 1) c), max 0 (min (Grid.rows grid - 1) r))

let route_net grid ~terminals =
  match List.map (clamp grid) terminals with
  | [] -> Some []
  | first :: rest ->
      let tree = ref [ first ] in
      let ok =
        List.for_all
          (fun terminal ->
            if List.mem terminal !tree then true
            else
              match path grid ~src:!tree ~dst:[ terminal ] with
              | None -> false
              | Some points ->
                  tree :=
                    List.filter (fun p -> not (List.mem p !tree)) points
                    @ !tree;
                  true)
          rest
      in
      if ok then Some !tree else None
