(** Uniform routing grid.

    Routing runs on a coarse grid over the placement (one track per
    [pitch] layout units) on a single metal layer above the cells:
    wires block each other but not the devices below. Obstacles are
    marked cells; the maze router claims the cells of finished routes
    so later nets must avoid them. *)

type t

type point = int * int
(** (column, row) grid indices. *)

val create : cols:int -> rows:int -> t
(** All cells free. Raises [Invalid_argument] on non-positive sizes. *)

val of_placement : pitch:int -> margin:int -> Placer.Placement.t -> t
(** A grid covering the placement's bounding box plus [margin] tracks
    on every side. *)

val cols : t -> int
val rows : t -> int
val in_bounds : t -> point -> bool
val blocked : t -> point -> bool

val block : t -> point -> unit
(** Mark a cell used. Out-of-bounds points are ignored. *)

val block_many : t -> point list -> unit

val copy : t -> t

val snap : pitch:int -> margin:int -> int * int -> point
(** Layout coordinates -> nearest grid point (same transform
    {!of_placement} uses). *)

val occupancy : t -> float
(** Fraction of blocked cells. *)
