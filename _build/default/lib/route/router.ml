open Geometry

type route = { net : string; points : Grid.point list }

type result = {
  routed : route list;
  failed : string list;
  wirelength : int;
  mirrored_pairs : (string * string) list;
  grid : Grid.t;
}

let default_pitch = 20
let default_margin = 4

let pin_point ~pitch ~margin placement m =
  match Placer.Placement.rect_of placement m with
  | None -> None
  | Some r ->
      let cx2, cy2 = Rect.center2 r in
      Some (Grid.snap ~pitch ~margin (cx2 / 2, cy2 / 2))

let net_pins ~pitch ~margin placement (net : Netlist.Net.t) =
  List.filter_map (pin_point ~pitch ~margin placement) net.Netlist.Net.pins

(* Grid-column reflection constant for a group: derived from an actual
   mirrored pair so pin images land exactly on pins. *)
let axis2_grid_of_group ~pitch ~margin placement
    (g : Constraints.Symmetry_group.t) =
  match
    Constraints.Placement_check.symmetry ~group:g
      placement.Placer.Placement.placed
  with
  | Error _ -> None
  | Ok _ -> (
      match (g.Constraints.Symmetry_group.pairs, g.Constraints.Symmetry_group.selfs) with
      | (a, b) :: _, _ -> (
          match
            ( pin_point ~pitch ~margin placement a,
              pin_point ~pitch ~margin placement b )
          with
          | Some (ca, _), Some (cb, _) -> Some (ca + cb)
          | _ -> None)
      | [], f :: _ -> (
          match pin_point ~pitch ~margin placement f with
          | Some (cf, _) -> Some (2 * cf)
          | None -> None)
      | [], [] -> None)

let close (c1, r1) (c2, r2) = abs (c1 - c2) <= 1 && abs (r1 - r2) <= 1

(* multiset match with tolerance: greedy bipartite *)
let pins_match mirrored actual =
  let rec go remaining = function
    | [] -> remaining = []
    | p :: rest -> (
        match List.partition (close p) remaining with
        | _ :: extra, others -> go (extra @ others) rest
        | [], _ -> false)
  in
  List.length mirrored = List.length actual && go actual mirrored

let mirror_twins ~axis2 ~pitch ~margin placement =
  let nets = placement.Placer.Placement.circuit.Netlist.Circuit.nets in
  (* axis2 is a doubled layout coordinate: the mirror image of layout
     point x is axis2 - x; snap the image back onto the grid *)
  let reflect (c, r) =
    let x = (c - margin) * pitch in
    let gx = fst (Grid.snap ~pitch ~margin (axis2 - x, 0)) in
    (gx, r)
  in
  let with_pins =
    List.map (fun n -> (n, net_pins ~pitch ~margin placement n)) nets
  in
  let rec pairs acc = function
    | [] -> List.rev acc
    | ((n1 : Netlist.Net.t), p1) :: rest -> (
        let mirrored = List.map reflect p1 in
        match
          List.find_opt (fun ((_ : Netlist.Net.t), p2) -> pins_match mirrored p2) rest
        with
        | Some ((n2, _) as hit) ->
            pairs
              ((n1.Netlist.Net.name, n2.Netlist.Net.name) :: acc)
              (List.filter (fun x -> x != hit) rest)
        | None -> pairs acc rest)
  in
  pairs [] with_pins

let bbox_semi pins =
  match pins with
  | [] -> 0
  | (c0, r0) :: rest ->
      let minc, maxc, minr, maxr =
        List.fold_left
          (fun (a, b, c, d) (pc, pr) ->
            (min a pc, max b pc, min c pr, max d pr))
          (c0, c0, r0, r0) rest
      in
      maxc - minc + maxr - minr

let is_mirror_route ~axis2_grid a b =
  let reflect (c, r) = (axis2_grid - c, r) in
  let norm pts = List.sort_uniq compare pts in
  norm (List.map reflect a) = norm b

let route_all ?(pitch = default_pitch) ?(margin = default_margin)
    ?(symmetric = []) placement =
  let grid = Grid.of_placement ~pitch ~margin placement in
  let nets = placement.Placer.Placement.circuit.Netlist.Circuit.nets in
  let pins_of = net_pins ~pitch ~margin placement in
  let axes =
    List.filter_map (axis2_grid_of_group ~pitch ~margin placement) symmetric
  in
  (* twin detection per axis, first match wins, disjoint *)
  let twin_of = Hashtbl.create 8 in
  List.iter
    (fun axis2_grid ->
      let with_pins = List.map (fun n -> (n, pins_of n)) nets in
      let reflect (c, r) = (axis2_grid - c, r) in
      let rec scan = function
        | [] -> ()
        | ((n1 : Netlist.Net.t), p1) :: rest ->
            if not (Hashtbl.mem twin_of n1.Netlist.Net.name) then begin
              let mirrored = List.map reflect p1 in
              match
                List.find_opt
                  (fun ((n2 : Netlist.Net.t), p2) ->
                    (not (Hashtbl.mem twin_of n2.Netlist.Net.name))
                    && pins_match mirrored p2)
                  rest
              with
              | Some ((n2 : Netlist.Net.t), _) ->
                  Hashtbl.replace twin_of n1.Netlist.Net.name
                    (n2.Netlist.Net.name, axis2_grid, true);
                  Hashtbl.replace twin_of n2.Netlist.Net.name
                    (n1.Netlist.Net.name, axis2_grid, false);
                  scan rest
              | None -> scan rest
            end
            else scan rest
      in
      scan with_pins)
    axes;
  let order =
    List.sort
      (fun (a : Netlist.Net.t) b ->
        let twin n = if Hashtbl.mem twin_of n.Netlist.Net.name then 0 else 1 in
        let c = Int.compare (twin a) (twin b) in
        if c <> 0 then c
        else Int.compare (bbox_semi (pins_of a)) (bbox_semi (pins_of b)))
      nets
  in
  let routed = ref [] and failed = ref [] and mirrored = ref [] in
  let done_nets = Hashtbl.create 16 in
  let claim points = Grid.block_many grid points in
  let route_plain (net : Netlist.Net.t) =
    match Maze.route_net grid ~terminals:(pins_of net) with
    | Some points ->
        claim points;
        routed := { net = net.Netlist.Net.name; points } :: !routed
    | None -> failed := net.Netlist.Net.name :: !failed
  in
  List.iter
    (fun (net : Netlist.Net.t) ->
      let name = net.Netlist.Net.name in
      if not (Hashtbl.mem done_nets name) then begin
        Hashtbl.replace done_nets name ();
        match Hashtbl.find_opt twin_of name with
        | Some (twin, axis2_grid, _) when not (Hashtbl.mem done_nets twin) ->
            Hashtbl.replace done_nets twin ();
            (* route the reference, mirror for the twin *)
            let reflect (c, r) = (axis2_grid - c, r) in
            (match Maze.route_net grid ~terminals:(pins_of net) with
            | Some points ->
                let image = List.map reflect points in
                let image_free =
                  List.for_all
                    (fun p -> Grid.in_bounds grid p && not (Grid.blocked grid p))
                    image
                in
                if image_free then begin
                  claim points;
                  claim image;
                  routed := { net = name; points } :: !routed;
                  routed := { net = twin; points = image } :: !routed;
                  mirrored := (name, twin) :: !mirrored
                end
                else begin
                  (* mirrored tracks taken: route both independently *)
                  claim points;
                  routed := { net = name; points } :: !routed;
                  let twin_net =
                    List.find
                      (fun (n : Netlist.Net.t) -> n.Netlist.Net.name = twin)
                      nets
                  in
                  route_plain twin_net
                end
            | None ->
                failed := name :: !failed;
                let twin_net =
                  List.find
                    (fun (n : Netlist.Net.t) -> n.Netlist.Net.name = twin)
                    nets
                in
                route_plain twin_net)
        | Some _ | None -> route_plain net
      end)
    order;
  {
    routed = List.rev !routed;
    failed = List.rev !failed;
    wirelength =
      List.fold_left (fun acc r -> acc + List.length r.points) 0 !routed;
    mirrored_pairs = List.rev !mirrored;
    grid;
  }
