open Sizing

let um = 1e-6

let test_mos_square_law () =
  let g = { Mos.w = 20.0 *. um; l = 1.0 *. um; folds = 1 } in
  let op = Mos.operating_point Mos.nmos g ~id:100e-6 in
  (* gm = sqrt(2 kp W/L Id) = sqrt(2*300e-6*20*100e-6) *)
  let expected = sqrt (2.0 *. 300e-6 *. 20.0 *. 100e-6) in
  Alcotest.(check bool) "gm formula" true
    (Float.abs (op.Mos.gm -. expected) < expected *. 1e-9);
  Alcotest.(check bool) "vov positive" true (op.Mos.vov > 0.0);
  (* doubling W/L raises gm *)
  let op2 =
    Mos.operating_point Mos.nmos { g with Mos.w = 40.0 *. um } ~id:100e-6
  in
  Alcotest.(check bool) "wider -> more gm" true (op2.Mos.gm > op.Mos.gm)

let test_folding_reduces_junction () =
  (* Folding shares drain stripes between finger pairs: going from one
     finger to two halves the drain area; beyond that the area stays at
     W*Ld/2 and only the sidewall perimeter creeps up slightly. *)
  let mk folds = { Mos.w = 40.0 *. um; l = 0.5 *. um; folds } in
  let c1 = Mos.drain_junction Mos.nmos (mk 1) in
  let c2 = Mos.drain_junction Mos.nmos (mk 2) in
  let c4 = Mos.drain_junction Mos.nmos (mk 4) in
  Alcotest.(check bool) "2 folds nearly halves" true (c2 < 0.7 *. c1);
  Alcotest.(check bool) "4 folds still well below 1" true (c4 < 0.8 *. c1)

let test_mos_guards () =
  let g = { Mos.w = 1.0 *. um; l = 1.0 *. um; folds = 1 } in
  Alcotest.(check bool) "zero current rejected" true
    (match Mos.operating_point Mos.nmos g ~id:0.0 with
    | exception Invalid_argument _ -> true
    | _ -> false)

let test_spec () =
  let s = Spec.make ~name:"a0_db" ~bound:(Spec.At_least 60.0) ~unit_:"dB" in
  Alcotest.(check bool) "met" true (Spec.satisfied s [ ("a0_db", 65.0) ]);
  Alcotest.(check bool) "unmet" false (Spec.satisfied s [ ("a0_db", 55.0) ]);
  Alcotest.(check bool) "missing fails" false (Spec.satisfied s []);
  Alcotest.(check (float 1e-9)) "violation" 0.25
    (Spec.violation
       (Spec.make ~name:"p" ~bound:(Spec.At_most 2.0) ~unit_:"")
       [ ("p", 2.5) ]);
  Alcotest.(check (float 1e-9)) "no violation when met" 0.0
    (Spec.violation s [ ("a0_db", 80.0) ])

let test_perf_sanity () =
  let perf = Perf.evaluate Perf.default_env Design.default in
  let get k = Option.get (Spec.value perf k) in
  Alcotest.(check bool) "gain in plausible range" true
    (get "a0_db" > 20.0 && get "a0_db" < 140.0);
  Alcotest.(check bool) "gbw positive" true (get "gbw_mhz" > 0.0);
  Alcotest.(check bool) "pm below 180" true (get "pm_deg" < 180.0);
  Alcotest.(check bool) "power positive" true (get "power_mw" > 0.0)

let test_bigger_cc_lowers_gbw () =
  let d = Design.default in
  let gbw cc =
    Option.get
      (Spec.value (Perf.evaluate Perf.default_env { d with Design.cc }) "gbw_mhz")
  in
  Alcotest.(check bool) "monotone in Cc" true (gbw 4e-12 < gbw 1e-12)

let test_parasitics_degrade_pm () =
  let d = Design.default in
  let pm parasitics =
    Option.get (Spec.value (Perf.evaluate ~parasitics Perf.default_env d) "pm_deg")
  in
  let loaded =
    { Perf.c_x1 = 50e-15; c_x2 = 200e-15; c_out = 500e-15; c_cc_route = 0.0 }
  in
  Alcotest.(check bool) "parasitics reduce PM" true
    (pm loaded < pm Perf.no_parasitics)

let test_template_legal () =
  let rng = Prelude.Rng.create 6 in
  let d = ref Design.default in
  for _ = 1 to 200 do
    d := Design.perturb rng !d;
    let inst = Template.generate !d in
    let rects = List.map (fun pd -> pd.Template.rect) inst.Template.devices in
    (* convert to placed for the overlap checker *)
    let placed =
      List.mapi
        (fun i r ->
          {
            Geometry.Transform.cell = i;
            rect = r;
            orient = Geometry.Orientation.R0;
          })
        rects
    in
    (match Constraints.Placement_check.overlap_free placed with
    | Ok () -> ()
    | Error v ->
        Alcotest.failf "template overlap: %a"
          Constraints.Placement_check.pp_violation v);
    Alcotest.(check bool) "positive size" true
      (inst.Template.width_um > 0.0 && inst.Template.height_um > 0.0)
  done

let test_folding_narrows_template () =
  let d = Design.default in
  let wide = Template.generate d in
  let folded =
    Template.generate
      { d with Design.dp = { d.Design.dp with Mos.folds = 4 };
               Design.stage2 = { d.Design.stage2 with Mos.folds = 4 } }
  in
  Alcotest.(check bool) "folding narrows the template" true
    (folded.Template.width_um < wide.Template.width_um)

let test_extract () =
  let d = Design.default in
  let inst = Template.generate d in
  let p = Extract.extract d inst in
  Alcotest.(check bool) "positive caps" true
    (p.Perf.c_x1 > 0.0 && p.Perf.c_x2 > 0.0 && p.Perf.c_out > 0.0);
  (* more folds -> smaller junction share on x2 *)
  let folded = { d with Design.dp = { d.Design.dp with Mos.folds = 8 } } in
  let p' = Extract.extract folded (Template.generate folded) in
  Alcotest.(check bool) "folding reduces c_x2" true (p'.Perf.c_x2 < p.Perf.c_x2)

let quick_sa =
  {
    Anneal.Sa.initial_temperature = Some 10.0;
    final_temperature = 1e-2;
    moves_per_round = 80;
    schedule = Anneal.Schedule.Geometric 0.9;
    frozen_rounds = 6;
    max_rounds = 50;
  }

let quick_config = { Flow.default_config with Flow.sa = quick_sa }

let test_flow_outcome_consistent () =
  let rng = Prelude.Rng.create 10 in
  let o = Flow.run ~config:quick_config ~rng Flow.Layout_aware in
  Alcotest.(check bool) "evaluations counted" true (o.Flow.evaluations > 0);
  let f = Flow.extraction_fraction o in
  Alcotest.(check bool) "extraction fraction sane" true (f >= 0.0 && f <= 1.0);
  Alcotest.(check bool) "layout nonempty" true
    (o.Flow.layout.Template.area_um2 > 0.0);
  (* layout-aware mode evaluates what it optimizes: extracted = cost basis *)
  Alcotest.(check bool) "perf keys present" true
    (Spec.value o.Flow.perf_extracted "pm_deg" <> None)

let test_flow_modes_differ () =
  let rng = Prelude.Rng.create 11 in
  let oe = Flow.run ~config:quick_config ~rng Flow.Electrical_only in
  let ol = Flow.run ~config:quick_config ~rng Flow.Layout_aware in
  (* electrical-only never folds; layout instance is single-fingered *)
  Alcotest.(check int) "no folds in electrical mode" 1
    oe.Flow.design.Design.dp.Mos.folds;
  (* layout-aware layout should be closer to square *)
  let skew inst = Float.abs (log (Template.aspect_ratio inst)) in
  Alcotest.(check bool) "layout-aware more square" true
    (skew ol.Flow.layout <= skew oe.Flow.layout +. 0.2)

let test_fc_perf_sanity () =
  let perf = Fc_perf.evaluate Perf.default_env Fc_design.default in
  let get k = Option.get (Spec.value perf k) in
  Alcotest.(check bool) "cascode gain high" true
    (get "a0_db" > 40.0 && get "a0_db" < 140.0);
  Alcotest.(check bool) "single stage PM healthy" true (get "pm_deg" > 45.0);
  Alcotest.(check bool) "gbw positive" true (get "gbw_mhz" > 0.0)

let test_fc_template_legal () =
  let rng = Prelude.Rng.create 14 in
  let d = ref Fc_design.default in
  for _ = 1 to 150 do
    d := Fc_design.perturb rng !d;
    let inst = Fc_template.generate !d in
    let placed =
      List.mapi
        (fun i pd ->
          {
            Geometry.Transform.cell = i;
            rect = pd.Template.rect;
            orient = Geometry.Orientation.R0;
          })
        inst.Template.devices
    in
    (match Constraints.Placement_check.overlap_free placed with
    | Ok () -> ()
    | Error v ->
        Alcotest.failf "fc template overlap: %a"
          Constraints.Placement_check.pp_violation v);
    Alcotest.(check int) "12 devices" 12 (List.length inst.Template.devices)
  done

let test_fc_extract () =
  let d = Fc_design.default in
  let p = Fc_extract.extract d (Fc_template.generate d) in
  Alcotest.(check bool) "fold node cap positive" true (p.Perf.c_x1 > 0.0);
  Alcotest.(check bool) "output cap positive" true (p.Perf.c_out > 0.0);
  (* parasitics must degrade the FC phase margin too *)
  let pm parasitics =
    Option.get
      (Spec.value (Fc_perf.evaluate ~parasitics Perf.default_env d) "pm_deg")
  in
  Alcotest.(check bool) "extracted parasitics reduce PM" true
    (pm p <= pm Perf.no_parasitics)

let test_fc_flow () =
  let rng = Prelude.Rng.create 20 in
  let o = Flow.run_folded_cascode ~config:quick_config ~rng Flow.Layout_aware in
  Alcotest.(check bool) "evaluations" true (o.Flow.evaluations > 0);
  Alcotest.(check bool) "layout positive" true
    (o.Flow.layout.Template.area_um2 > 0.0);
  Alcotest.(check bool) "folds explored or kept" true
    (o.Flow.design.Fc_design.dp.Mos.folds >= 1)

let () =
  Alcotest.run "sizing"
    [
      ( "mos",
        [
          Alcotest.test_case "square law" `Quick test_mos_square_law;
          Alcotest.test_case "folding junction" `Quick test_folding_reduces_junction;
          Alcotest.test_case "guards" `Quick test_mos_guards;
        ] );
      ("spec", [ Alcotest.test_case "bounds" `Quick test_spec ]);
      ( "perf",
        [
          Alcotest.test_case "sanity" `Quick test_perf_sanity;
          Alcotest.test_case "cc vs gbw" `Quick test_bigger_cc_lowers_gbw;
          Alcotest.test_case "parasitics vs pm" `Quick test_parasitics_degrade_pm;
        ] );
      ( "template",
        [
          Alcotest.test_case "legal instances" `Quick test_template_legal;
          Alcotest.test_case "folding narrows" `Quick test_folding_narrows_template;
        ] );
      ("extract", [ Alcotest.test_case "caps" `Quick test_extract ]);
      ( "flow",
        [
          Alcotest.test_case "outcome consistent" `Slow test_flow_outcome_consistent;
          Alcotest.test_case "modes differ" `Slow test_flow_modes_differ;
        ] );
      ( "folded cascode",
        [
          Alcotest.test_case "perf sanity" `Quick test_fc_perf_sanity;
          Alcotest.test_case "template legal" `Quick test_fc_template_legal;
          Alcotest.test_case "extract" `Quick test_fc_extract;
          Alcotest.test_case "flow" `Slow test_fc_flow;
        ] );
    ]
