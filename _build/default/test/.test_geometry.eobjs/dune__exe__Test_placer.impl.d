test/test_placer.ml: Alcotest Anneal Constraints Geometry List Netlist Placer Prelude Printf QCheck QCheck_alcotest Result Seqpair String
