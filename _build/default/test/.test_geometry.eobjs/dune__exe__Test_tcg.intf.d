test/test_tcg.mli:
