test/test_hbstar.mli:
