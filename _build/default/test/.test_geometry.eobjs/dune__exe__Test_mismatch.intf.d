test/test_mismatch.mli:
