test/test_asf.mli:
