test/test_shapefn.mli:
