test/test_thermal.ml: Alcotest Anneal Constraints Geometry Netlist Orientation Placer Prelude Thermal Transform
