test/test_seqpair.ml: Alcotest Array Bit Constraints Fun Geometry Int List Moves Pack Perm Prelude Printf QCheck QCheck_alcotest Result Seqpair Sp Veb
