test/test_hbstar.ml: Alcotest Anneal Bstar Constraints List Netlist Placer Prelude Result
