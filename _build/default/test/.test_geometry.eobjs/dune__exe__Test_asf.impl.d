test/test_asf.ml: Alcotest Array Bstar Constraints Geometry Int List Prelude
