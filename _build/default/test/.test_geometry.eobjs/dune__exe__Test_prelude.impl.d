test/test_prelude.ml: Alcotest Array Float Fun Int List Prelude QCheck QCheck_alcotest String
