test/test_mismatch.ml: Alcotest Float Geometry List Mismatch Prelude Printf Rect
