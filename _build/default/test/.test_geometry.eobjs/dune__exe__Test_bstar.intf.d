test/test_bstar.mli:
