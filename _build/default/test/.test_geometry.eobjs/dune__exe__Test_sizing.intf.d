test/test_sizing.mli:
