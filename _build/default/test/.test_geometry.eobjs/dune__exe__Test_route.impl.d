test/test_route.ml: Alcotest Anneal Constraints Geometry Hashtbl List Netlist Placer Prelude Route
