test/test_anneal.mli:
