test/test_tcg.ml: Alcotest Anneal Array Constraints List Netlist Pack Placer Prelude QCheck QCheck_alcotest Result Seqpair Sp Tcg
