test/test_anneal.ml: Alcotest Anneal Prelude Printf
