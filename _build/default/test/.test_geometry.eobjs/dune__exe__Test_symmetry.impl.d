test/test_symmetry.ml: Alcotest Array Constraints List Moves Perm Prelude Printf Result Seqpair Sp Symmetry
