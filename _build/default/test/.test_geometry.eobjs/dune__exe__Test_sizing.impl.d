test/test_sizing.ml: Alcotest Anneal Constraints Design Extract Fc_design Fc_extract Fc_perf Fc_template Float Flow Geometry List Mos Option Perf Prelude Sizing Spec Template
