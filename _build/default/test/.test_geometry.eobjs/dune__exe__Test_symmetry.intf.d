test/test_symmetry.mli:
