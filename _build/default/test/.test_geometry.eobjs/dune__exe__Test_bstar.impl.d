test/test_bstar.ml: Alcotest Array Bstar Centroid Constraints Count Fun Geometry Int List Option Perturb Prelude Printf QCheck QCheck_alcotest Result Tree
