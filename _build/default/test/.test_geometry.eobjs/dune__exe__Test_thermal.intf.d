test/test_thermal.mli:
