test/test_geometry.ml: Alcotest Contour Format Gen Geometry Guard_ring Interval List Option Orientation Outline Prelude QCheck QCheck_alcotest Rect Transform
