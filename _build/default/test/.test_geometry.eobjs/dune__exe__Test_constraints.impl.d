test/test_constraints.ml: Alcotest Constraints Format Geometry List Netlist Orientation Result Transform
