test/test_placer.mli:
