test/test_seqpair.mli:
