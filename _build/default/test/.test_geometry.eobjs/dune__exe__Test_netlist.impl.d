test/test_netlist.ml: Alcotest Array Benchmarks Circuit Cluster Device Float Format Gen Hierarchy Int List Net Netlist Parser Prelude Printf QCheck QCheck_alcotest Recognize Result String Wirelength
