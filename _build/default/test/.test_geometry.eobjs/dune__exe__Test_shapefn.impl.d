test/test_shapefn.ml: Alcotest Bstar Circuit Combine Constraints Enumerate Esf Geometry Hierarchy List Netlist Placer Printf Result Shape Shape_fn Shapefn
