open Seqpair

let arb_sp_dims =
  let gen =
    QCheck.Gen.(
      int_range 1 16 >>= fun n ->
      int_bound 1_000_000 >>= fun seed ->
      let rng = Prelude.Rng.create seed in
      let sp = Sp.random rng n in
      let dims =
        Array.init n (fun _ ->
            (1 + Prelude.Rng.int rng 40, 1 + Prelude.Rng.int rng 40))
      in
      return (sp, dims))
  in
  QCheck.make gen

let test_of_seqpair_valid () =
  let rng = Prelude.Rng.create 3 in
  for _ = 1 to 200 do
    let n = 1 + Prelude.Rng.int rng 20 in
    let tcg = Tcg.of_seqpair (Sp.random rng n) in
    match Tcg.validate tcg with
    | Ok () -> ()
    | Error m -> Alcotest.fail m
  done

let test_roundtrip () =
  let rng = Prelude.Rng.create 5 in
  for _ = 1 to 200 do
    let n = 1 + Prelude.Rng.int rng 18 in
    let sp = Sp.random rng n in
    let sp' = Tcg.to_seqpair (Tcg.of_seqpair sp) in
    (* the relations (not necessarily the sequences) must agree *)
    for a = 0 to n - 1 do
      for b = 0 to n - 1 do
        if a <> b && Sp.relation sp a b <> Sp.relation sp' a b then
          Alcotest.failf "relation (%d,%d) changed" a b
      done
    done
  done

let test_pack_matches_seqpair () =
  let rng = Prelude.Rng.create 7 in
  for _ = 1 to 200 do
    let n = 1 + Prelude.Rng.int rng 16 in
    let sp = Sp.random rng n in
    let d =
      Array.init n (fun _ ->
          (1 + Prelude.Rng.int rng 30, 1 + Prelude.Rng.int rng 30))
    in
    let dims c = d.(c) in
    let via_sp = Pack.pack sp dims in
    let via_tcg = Tcg.pack (Tcg.of_seqpair sp) dims in
    if via_sp <> via_tcg then Alcotest.fail "packings differ"
  done

let test_flip_changes_relation () =
  let sp, _ = Sp.of_strings ~alpha:"ABC" ~beta:"ABC" in
  let tcg = Tcg.of_seqpair sp in
  (* A left of B; flipping makes A below B *)
  match Tcg.flip tcg 0 1 with
  | None -> Alcotest.fail "flip rejected on a row"
  | Some t' -> (
      match Tcg.relation t' 0 1 with
      | Some (Tcg.Ver, `Forward) -> (
          match Tcg.validate t' with
          | Ok () -> ()
          | Error m -> Alcotest.fail m)
      | _ -> Alcotest.fail "unexpected relation after flip")

let test_flip_rejects_closure_break () =
  (* chain A left B left C: flipping (A,C) to vertical would violate
     transitivity of Ch (A->B->C forces A->C horizontal) *)
  let sp, _ = Sp.of_strings ~alpha:"ABC" ~beta:"ABC" in
  let tcg = Tcg.of_seqpair sp in
  (match Tcg.flip tcg 0 2 with
  | None -> ()
  | Some _ -> Alcotest.fail "closure-breaking flip accepted");
  match Tcg.reverse tcg 0 2 with
  | None -> ()
  | Some _ -> Alcotest.fail "cycle-creating reverse accepted"

let prop_moves_preserve_validity =
  QCheck.Test.make ~name:"random moves keep TCG valid" ~count:200
    QCheck.(pair (int_range 2 14) small_int)
    (fun (n, seed) ->
      let rng = Prelude.Rng.create seed in
      let t = ref (Tcg.of_seqpair (Sp.random rng n)) in
      let ok = ref true in
      for _ = 1 to 30 do
        t := Tcg.random_neighbor rng !t;
        if Result.is_error (Tcg.validate !t) then ok := false
      done;
      !ok)

let prop_pack_overlap_free =
  QCheck.Test.make ~name:"TCG pack overlap-free after moves" ~count:200
    arb_sp_dims
    (fun (sp, d) ->
      let rng = Prelude.Rng.create 11 in
      let t = ref (Tcg.of_seqpair sp) in
      for _ = 1 to 15 do
        t := Tcg.random_neighbor rng !t
      done;
      let dims c = d.(c) in
      Result.is_ok
        (Constraints.Placement_check.overlap_free (Tcg.pack !t dims)))

let test_sa_place () =
  let circuit =
    Netlist.Circuit.make ~name:"t"
      ~modules:
        (List.init 8 (fun i ->
             Netlist.Circuit.block
               ~name:(string_of_int i)
               ~w:(20 + (7 * i))
               ~h:(30 - (2 * i))))
      ~nets:[]
  in
  let params =
    {
      Anneal.Sa.initial_temperature = None;
      final_temperature = 1e-2;
      moves_per_round = 60;
      schedule = Anneal.Schedule.default;
      frozen_rounds = 4;
      max_rounds = 40;
    }
  in
  let rng = Prelude.Rng.create 9 in
  let out = Placer.Sa_tcg.place ~params ~rng circuit in
  match Placer.Placement.validate out.Placer.Sa_tcg.placement with
  | Ok () -> ()
  | Error m -> Alcotest.fail m

let () =
  Alcotest.run "tcg"
    [
      ( "construction",
        [
          Alcotest.test_case "of_seqpair valid" `Quick test_of_seqpair_valid;
          Alcotest.test_case "roundtrip relations" `Quick test_roundtrip;
          Alcotest.test_case "pack = seqpair pack" `Quick
            test_pack_matches_seqpair;
        ] );
      ( "moves",
        [
          Alcotest.test_case "flip valid" `Quick test_flip_changes_relation;
          Alcotest.test_case "invalid rejected" `Quick
            test_flip_rejects_closure_break;
        ] );
      ( "placer",
        [ Alcotest.test_case "sa place" `Quick test_sa_place ] );
      ( "properties",
        List.map QCheck_alcotest.to_alcotest
          [ prop_moves_preserve_validity; prop_pack_overlap_free ] );
    ]
