open Geometry
module G = Constraints.Symmetry_group
module Check = Constraints.Placement_check

let place cell x y w h =
  Transform.place ~cell ~x ~y ~w ~h ~orient:Orientation.R0

let test_group_make () =
  let g = G.make ~pairs:[ (0, 1) ] ~selfs:[ 2 ] () in
  Alcotest.(check int) "cardinal" 3 (G.cardinal g);
  Alcotest.(check (option int)) "sym pair" (Some 1) (G.sym g 0);
  Alcotest.(check (option int)) "sym self" (Some 2) (G.sym g 2);
  Alcotest.(check (option int)) "sym outside" None (G.sym g 9);
  Alcotest.check_raises "duplicate"
    (Invalid_argument "Symmetry_group.make: duplicate cell") (fun () ->
      ignore (G.make ~pairs:[ (0, 1) ] ~selfs:[ 1 ] ()));
  Alcotest.check_raises "self pair"
    (Invalid_argument "Symmetry_group.make: pair of equal cells") (fun () ->
      ignore (G.make ~pairs:[ (3, 3) ] ~selfs:[] ()))

let test_of_hierarchy_fig2 () =
  let b = Netlist.Benchmarks.fig2_design () in
  let groups = G.of_hierarchy b.Netlist.Benchmarks.hierarchy in
  Alcotest.(check int) "one group" 1 (List.length groups);
  match groups with
  | [ g ] ->
      Alcotest.(check (list (pair int int))) "pair D,E" [ (3, 4) ] g.G.pairs;
      Alcotest.(check (list int)) "self A" [ 0 ] g.G.selfs
  | _ -> Alcotest.fail "unexpected"

let test_overlap_free () =
  let good = [ place 0 0 0 5 5; place 1 5 0 5 5; place 2 0 5 10 2 ] in
  Alcotest.(check bool) "disjoint ok" true (Result.is_ok (Check.overlap_free good));
  let bad = place 3 4 4 3 3 :: good in
  Alcotest.(check bool) "overlap caught" true (Result.is_error (Check.overlap_free bad))

let test_symmetry_check () =
  let g = G.make ~pairs:[ (0, 1) ] ~selfs:[ 2 ] () in
  (* axis at x=10 (axis2=20): pair 0 at [2,6), 1 at [14,18), self 2 at [8,12) *)
  let good = [ place 0 2 0 4 5; place 1 14 0 4 5; place 2 8 6 4 3 ] in
  (match Check.symmetry ~group:g good with
  | Ok axis2 -> Alcotest.(check int) "axis" 20 axis2
  | Error v -> Alcotest.fail (Format.asprintf "%a" Check.pp_violation v));
  let off_axis = [ place 0 2 0 4 5; place 1 14 0 4 5; place 2 9 6 4 3 ] in
  Alcotest.(check bool) "self off axis caught" true
    (Result.is_error (Check.symmetry ~group:g off_axis));
  let y_mismatch = [ place 0 2 0 4 5; place 1 14 1 4 5; place 2 8 6 4 3 ] in
  Alcotest.(check bool) "y mismatch caught" true
    (Result.is_error (Check.symmetry ~group:g y_mismatch));
  let dim_mismatch = [ place 0 2 0 4 5; place 1 14 0 5 5; place 2 8 6 4 3 ] in
  Alcotest.(check bool) "dims mismatch caught" true
    (Result.is_error (Check.symmetry ~group:g dim_mismatch));
  let unplaced = [ place 0 2 0 4 5; place 2 8 6 4 3 ] in
  Alcotest.(check bool) "missing cell caught" true
    (Result.is_error (Check.symmetry ~group:g unplaced))

let test_two_pairs_common_axis () =
  let g = G.make ~pairs:[ (0, 1); (2, 3) ] ~selfs:[] () in
  let good =
    [ place 0 0 0 4 5; place 1 16 0 4 5; place 2 5 0 2 3; place 3 13 0 2 3 ]
  in
  (match Check.symmetry ~group:g good with
  | Ok axis2 -> Alcotest.(check int) "axis" 20 axis2
  | Error v -> Alcotest.fail (Format.asprintf "%a" Check.pp_violation v));
  let skewed =
    [ place 0 0 0 4 5; place 1 16 0 4 5; place 2 5 0 2 3; place 3 14 0 2 3 ]
  in
  Alcotest.(check bool) "inconsistent axes caught" true
    (Result.is_error (Check.symmetry ~group:g skewed))

let test_proximity () =
  let connected = [ place 0 0 0 5 5; place 1 5 0 5 5 ] in
  Alcotest.(check bool) "connected" true
    (Result.is_ok (Check.proximity ~members:[ 0; 1 ] connected));
  let gap = [ place 0 0 0 5 5; place 1 6 0 5 5 ] in
  Alcotest.(check bool) "gap caught" true
    (Result.is_error (Check.proximity ~members:[ 0; 1 ] gap))

let test_common_centroid () =
  (* 2x2 interdigitated, all 4x3 cells *)
  let good =
    [ place 0 0 0 4 3; place 1 4 0 4 3; place 2 4 3 4 3; place 3 0 3 4 3 ]
  in
  (* centers: (2,1.5) (6,1.5) (6,4.5) (2,4.5): centroid (4,3); 0<->2, 1<->3 *)
  Alcotest.(check bool) "point symmetric ok" true
    (Result.is_ok (Check.common_centroid ~members:[ 0; 1; 2; 3 ] good));
  let bad =
    [ place 0 0 0 4 3; place 1 4 0 4 3; place 2 4 3 4 3; place 3 1 3 4 3 ]
  in
  Alcotest.(check bool) "shifted caught" true
    (Result.is_error (Check.common_centroid ~members:[ 0; 1; 2; 3 ] bad));
  (* odd count: middle cell on centroid *)
  let row = [ place 0 0 0 4 3; place 1 4 0 4 3; place 2 8 0 4 3 ] in
  Alcotest.(check bool) "odd row ok" true
    (Result.is_ok (Check.common_centroid ~members:[ 0; 1; 2 ] row))

let () =
  Alcotest.run "constraints"
    [
      ( "symmetry group",
        [
          Alcotest.test_case "make/sym" `Quick test_group_make;
          Alcotest.test_case "of_hierarchy fig2" `Quick test_of_hierarchy_fig2;
        ] );
      ( "checks",
        [
          Alcotest.test_case "overlap" `Quick test_overlap_free;
          Alcotest.test_case "symmetry" `Quick test_symmetry_check;
          Alcotest.test_case "two pairs" `Quick test_two_pairs_common_axis;
          Alcotest.test_case "proximity" `Quick test_proximity;
          Alcotest.test_case "common centroid" `Quick test_common_centroid;
        ] );
    ]
