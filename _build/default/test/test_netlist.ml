open Netlist

let test_parse_values () =
  let check s expected =
    match Parser.parse_value s with
    | Some v ->
        Alcotest.(check bool)
          (Printf.sprintf "%s -> %g" s expected)
          true
          (Float.abs (v -. expected) <= Float.abs expected *. 1e-9)
    | None -> Alcotest.fail ("failed to parse " ^ s)
  in
  check "1p" 1e-12;
  check "2.5u" 2.5e-6;
  check "10k" 1e4;
  check "3meg" 3e6;
  check "100f" 100e-15;
  check "0.5" 0.5;
  check "7n" 7e-9;
  Alcotest.(check (option reject)) "garbage" None (Parser.parse_value "xyz")

let test_parse_miller () =
  match Parser.parse_string Benchmarks.miller_netlist with
  | Error e -> Alcotest.fail (Format.asprintf "%a" Parser.pp_error e)
  | Ok devices ->
      Alcotest.(check int) "9 devices" 9 (List.length devices);
      let p1 = List.find (fun d -> d.Device.name = "MP1") devices in
      (match p1.Device.kind with
      | Device.Mos { mos = Device.Pmos; w_um; l_um; folds } ->
          Alcotest.(check (float 1e-9)) "W" 40.0 w_um;
          Alcotest.(check (float 1e-9)) "L" 0.5 l_um;
          Alcotest.(check int) "folds" 2 folds
      | _ -> Alcotest.fail "MP1 should be a PMOS");
      Alcotest.(check (option string)) "gate net" (Some "inp")
        (Device.net_of_pin p1 "g")

let test_parse_errors () =
  let expect_error text =
    match Parser.parse_string text with
    | Error _ -> ()
    | Ok _ -> Alcotest.fail ("expected parse error for: " ^ text)
  in
  expect_error "M1 d g s b foo W=1u L=1u";
  expect_error "M1 d g s b nmos L=1u";
  expect_error "C1 a b garbage";
  expect_error "Q1 a b c"

let test_to_circuit () =
  match Parser.parse_string Benchmarks.miller_netlist with
  | Error _ -> Alcotest.fail "parse"
  | Ok devices ->
      let c = Parser.to_circuit ~name:"m" devices in
      Alcotest.(check int) "9 modules" 9 (Circuit.size c);
      (* supply nets dropped *)
      Alcotest.(check bool) "no vdd net" true
        (not (List.exists (fun (n : Net.t) -> n.Net.name = "vdd") c.Circuit.nets));
      let x2 = List.find (fun (n : Net.t) -> n.Net.name = "x2") c.Circuit.nets in
      Alcotest.(check int) "x2 degree" 4 (Net.degree x2)

let test_footprints () =
  let mos folds =
    Device.make ~name:"m"
      ~kind:(Device.Mos { mos = Device.Nmos; w_um = 40.0; l_um = 0.5; folds })
      ~pins:[]
  in
  let w1, h1 = Device.footprint (mos 1) in
  let w4, h4 = Device.footprint (mos 4) in
  Alcotest.(check bool) "positive" true (w1 > 0 && h1 > 0);
  Alcotest.(check bool) "folding narrows" true (w4 < w1);
  Alcotest.(check bool) "folding raises" true (h4 > h1);
  let cap =
    Device.make ~name:"c" ~kind:(Device.Cap { farads = 1e-12 }) ~pins:[]
  in
  let cw, ch = Device.footprint cap in
  Alcotest.(check bool) "cap square-ish" true (abs (cw - ch) <= 1)

let test_recognize_miller () =
  let b = Benchmarks.miller () in
  let { Recognize.structures; hierarchy } = Recognize.recognize b.circuit in
  let mirrors =
    List.filter
      (function Recognize.Current_mirror _ -> true | _ -> false)
      structures
  in
  let dps =
    List.filter (function Recognize.Diff_pair _ -> true | _ -> false) structures
  in
  Alcotest.(check int) "two mirrors" 2 (List.length mirrors);
  Alcotest.(check int) "one diff pair" 1 (List.length dps);
  (* the three-device bias mirror *)
  Alcotest.(check bool) "3-device mirror present" true
    (List.exists
       (function
         | Recognize.Current_mirror ms -> List.length ms = 3
         | Recognize.Diff_pair _ | Recognize.Cascode_pair _ -> false)
       structures);
  (* CORE = DP + load mirror under one symmetry node *)
  let cores =
    Hierarchy.constraint_nodes hierarchy
    |> List.filter (fun (name, kind, leaves) ->
           kind = Hierarchy.Symmetry
           && List.length leaves = 4
           && String.length name >= 4
           && String.sub name 0 4 = "CORE")
  in
  Alcotest.(check int) "one CORE node" 1 (List.length cores);
  match Hierarchy.validate hierarchy ~n_modules:(Circuit.size b.circuit) with
  | Ok () -> ()
  | Error msg -> Alcotest.fail msg

let test_hierarchy_ops () =
  let open Hierarchy in
  let t =
    node "top"
      [ node ~kind:Symmetry "s" [ Leaf 0; Leaf 1 ]; Leaf 2; node "g" [ Leaf 3 ] ]
  in
  Alcotest.(check (list int)) "leaves" [ 0; 1; 2; 3 ] (leaves t);
  Alcotest.(check int) "size" 4 (size t);
  Alcotest.(check int) "depth" 3 (depth t);
  (match validate t ~n_modules:4 with
  | Ok () -> ()
  | Error m -> Alcotest.fail m);
  (match validate t ~n_modules:5 with
  | Error _ -> ()
  | Ok () -> Alcotest.fail "missing module undetected");
  let dup = node "top" [ Leaf 0; Leaf 0 ] in
  (match validate dup ~n_modules:1 with
  | Error _ -> ()
  | Ok () -> Alcotest.fail "duplicate undetected");
  let sets = basic_module_sets t in
  Alcotest.(check int) "basic sets" 2 (List.length sets)

let test_subcircuit () =
  let b = Benchmarks.fig1_circuit () in
  let sub, map = Circuit.subcircuit b ~name:"sub" [ 1; 2; 6 ] in
  Alcotest.(check int) "3 modules" 3 (Circuit.size sub);
  Alcotest.(check (array int)) "mapping" [| 1; 2; 6 |] map;
  (* net n1 had pins 1,2,6,3 -> pin 3 outside, net dropped *)
  Alcotest.(check int) "nets inside only" 0 (List.length sub.Circuit.nets)

let test_wirelength () =
  let nets = [ Net.make ~name:"n" ~pins:[ 0; 1 ] (); Net.make ~weight:2.0 ~name:"m" ~pins:[ 0; 2 ] () ] in
  let centers = [| (0, 0); (20, 10); (6, 8) |] in
  let center2 m = Some centers.(m) in
  (* hpwl n = (20+10)/2 = 15; m = 2*(6+8)/2 = 14 *)
  Alcotest.(check (float 1e-9)) "hpwl" 29.0 (Wirelength.hpwl nets ~center2);
  Alcotest.(check (float 1e-9)) "skips unplaced" 15.0
    (Wirelength.hpwl nets ~center2:(fun m -> if m = 2 then None else Some centers.(m)))

let test_print_roundtrip_miller () =
  match Parser.parse_string Benchmarks.miller_netlist with
  | Error _ -> Alcotest.fail "parse"
  | Ok devices -> (
      let text = Parser.print_netlist devices in
      match Parser.parse_string text with
      | Error e -> Alcotest.failf "reparse: %a" Parser.pp_error e
      | Ok devices' ->
          Alcotest.(check int) "same count" (List.length devices)
            (List.length devices');
          List.iter2
            (fun (a : Device.t) (b : Device.t) ->
              Alcotest.(check string) "name" a.Device.name b.Device.name;
              Alcotest.(check bool) "pins" true (a.Device.pins = b.Device.pins);
              match (a.Device.kind, b.Device.kind) with
              | ( Device.Mos { mos = m1; w_um = w1; l_um = l1; folds = f1 },
                  Device.Mos { mos = m2; w_um = w2; l_um = l2; folds = f2 } ) ->
                  Alcotest.(check bool) "mos equal" true
                    (m1 = m2 && f1 = f2
                    && Float.abs (w1 -. w2) < 1e-9
                    && Float.abs (l1 -. l2) < 1e-9)
              | Device.Cap { farads = v1 }, Device.Cap { farads = v2 }
                ->
                  Alcotest.(check bool) "cap equal" true
                    (Float.abs (v1 -. v2) <= v1 *. 1e-9)
              | Device.Res { ohms = v1 }, Device.Res { ohms = v2 } ->
                  Alcotest.(check bool) "res equal" true
                    (Float.abs (v1 -. v2) <= v1 *. 1e-9)
              | _ -> Alcotest.fail "kind changed")
            devices devices')

let prop_roundtrip_random_netlists =
  QCheck.Test.make ~name:"print/parse roundtrip" ~count:200 QCheck.small_int
    (fun seed ->
      let rng = Prelude.Rng.create seed in
      let n = 1 + Prelude.Rng.int rng 12 in
      let net () = Printf.sprintf "n%d" (Prelude.Rng.int rng 8) in
      let devices =
        List.init n (fun i ->
            match Prelude.Rng.int rng 3 with
            | 0 ->
                Device.make
                  ~name:(Printf.sprintf "M%d" i)
                  ~kind:
                    (Device.Mos
                       {
                         mos =
                           (if Prelude.Rng.bool rng then Device.Nmos
                            else Device.Pmos);
                         w_um = float_of_int (1 + Prelude.Rng.int rng 100);
                         l_um = float_of_int (1 + Prelude.Rng.int rng 4);
                         folds = 1 + Prelude.Rng.int rng 8;
                       })
                  ~pins:
                    [ ("d", net ()); ("g", net ()); ("s", net ()); ("b", net ()) ]
            | 1 ->
                Device.make
                  ~name:(Printf.sprintf "C%d" i)
                  ~kind:
                    (Device.Cap
                       { farads = float_of_int (1 + Prelude.Rng.int rng 100) *. 1e-13 })
                  ~pins:[ ("p", net ()); ("n", net ()) ]
            | _ ->
                Device.make
                  ~name:(Printf.sprintf "R%d" i)
                  ~kind:
                    (Device.Res
                       { ohms = float_of_int (1 + Prelude.Rng.int rng 100000) })
                  ~pins:[ ("p", net ()); ("n", net ()) ])
      in
      match Parser.parse_string (Parser.print_netlist devices) with
      | Error _ -> false
      | Ok devices' ->
          List.length devices = List.length devices'
          && List.for_all2
               (fun (a : Device.t) (b : Device.t) ->
                 a.Device.name = b.Device.name && a.Device.pins = b.Device.pins)
               devices devices')

let prop_parser_never_crashes =
  QCheck.Test.make ~name:"parser total on garbage" ~count:500
    QCheck.(string_of_size Gen.(int_bound 200))
    (fun text ->
      match Parser.parse_string text with Ok _ | Error _ -> true)

let test_table1_suite () =
  let suite = Benchmarks.table1_suite () in
  let sizes = List.map (fun (b : Benchmarks.bench) -> Circuit.size b.circuit) suite in
  Alcotest.(check (list int)) "module counts" [ 13; 10; 22; 46; 65; 110 ] sizes;
  List.iter
    (fun (b : Benchmarks.bench) ->
      match
        Hierarchy.validate b.hierarchy ~n_modules:(Circuit.size b.circuit)
      with
      | Ok () -> ()
      | Error m -> Alcotest.fail (b.label ^ ": " ^ m))
    suite

let test_synthetic_deterministic () =
  let a = Benchmarks.synthetic ~label:"x" ~n:25 ~seed:5 in
  let b = Benchmarks.synthetic ~label:"x" ~n:25 ~seed:5 in
  Alcotest.(check int) "same size" (Circuit.size a.circuit) (Circuit.size b.circuit);
  Array.iteri
    (fun i (m : Circuit.module_) ->
      let m' = b.circuit.Circuit.modules.(i) in
      Alcotest.(check (pair int int)) "same dims" (m.w, m.h) (m'.w, m'.h))
    a.circuit.Circuit.modules

let test_cluster_two_cliques () =
  (* two 3-cliques joined by one weak net: clustering must put each
     clique in its own subtree *)
  let modules =
    List.init 6 (fun i ->
        Circuit.block ~name:(Printf.sprintf "m%d" i) ~w:10 ~h:10)
  in
  let nets =
    [
      Net.make ~weight:5.0 ~name:"a" ~pins:[ 0; 1; 2 ] ();
      Net.make ~weight:5.0 ~name:"b" ~pins:[ 3; 4; 5 ] ();
      Net.make ~weight:0.1 ~name:"bridge" ~pins:[ 2; 3 ] ();
    ]
  in
  let c = Circuit.make ~name:"cliques" ~modules ~nets in
  let h = Cluster.by_connectivity ~max_cluster:3 c in
  (match Hierarchy.validate h ~n_modules:6 with
  | Ok () -> ()
  | Error m -> Alcotest.fail m);
  let sets = Hierarchy.basic_module_sets h in
  let sorted_sets =
    List.map (fun (_, _, cells) -> List.sort Int.compare cells) sets
    |> List.sort compare
  in
  Alcotest.(check (list (list int))) "cliques become basic sets"
    [ [ 0; 1; 2 ]; [ 3; 4; 5 ] ]
    sorted_sets

let test_cluster_disconnected () =
  let modules =
    List.init 5 (fun i ->
        Circuit.block ~name:(Printf.sprintf "m%d" i) ~w:10 ~h:10)
  in
  let c = Circuit.make ~name:"island" ~modules ~nets:[] in
  let h = Cluster.by_connectivity c in
  match Hierarchy.validate h ~n_modules:5 with
  | Ok () -> ()
  | Error m -> Alcotest.fail m

let test_cluster_connectivity_metric () =
  let c = (Benchmarks.miller ()).Benchmarks.circuit in
  let p1 = Circuit.find_module c "MP1" in
  let n3 = Circuit.find_module c "MN3" in
  let p7 = Circuit.find_module c "MP7" in
  Alcotest.(check bool) "P1 and N3 share x1" true
    (Cluster.connectivity c p1 n3 > 0.0);
  Alcotest.(check (float 0.0)) "P1 and P7 unconnected (signal nets)" 0.0
    (Cluster.connectivity c p1 p7)

let prop_cluster_covers_everything =
  QCheck.Test.make ~name:"clustering covers all modules once" ~count:100
    QCheck.(pair small_int (int_range 1 20))
    (fun (seed, n) ->
      let b = Benchmarks.synthetic ~label:"cl" ~n ~seed in
      let h = Cluster.by_connectivity b.Benchmarks.circuit in
      Result.is_ok (Hierarchy.validate h ~n_modules:n))

let test_fig1 () =
  let c = Benchmarks.fig1_circuit () in
  Alcotest.(check int) "7 cells" 7 (Circuit.size c);
  let pairs, selfs = Benchmarks.fig1_symmetry in
  List.iter
    (fun (a, b) ->
      Alcotest.(check (pair int int)) "pair dims match" (Circuit.dims c a)
        (Circuit.dims c b))
    pairs;
  Alcotest.(check int) "two selfs" 2 (List.length selfs)

let () =
  Alcotest.run "netlist"
    [
      ( "parser",
        [
          Alcotest.test_case "values" `Quick test_parse_values;
          Alcotest.test_case "miller netlist" `Quick test_parse_miller;
          Alcotest.test_case "errors" `Quick test_parse_errors;
          Alcotest.test_case "to_circuit" `Quick test_to_circuit;
          Alcotest.test_case "print roundtrip" `Quick
            test_print_roundtrip_miller;
        ] );
      ( "parser properties",
        List.map QCheck_alcotest.to_alcotest
          [ prop_roundtrip_random_netlists; prop_parser_never_crashes ] );
      ( "device",
        [ Alcotest.test_case "footprints" `Quick test_footprints ] );
      ( "recognize",
        [ Alcotest.test_case "miller" `Quick test_recognize_miller ] );
      ( "hierarchy",
        [ Alcotest.test_case "ops" `Quick test_hierarchy_ops ] );
      ( "circuit",
        [
          Alcotest.test_case "subcircuit" `Quick test_subcircuit;
          Alcotest.test_case "wirelength" `Quick test_wirelength;
        ] );
      ( "cluster",
        [
          Alcotest.test_case "two cliques" `Quick test_cluster_two_cliques;
          Alcotest.test_case "disconnected" `Quick test_cluster_disconnected;
          Alcotest.test_case "metric" `Quick test_cluster_connectivity_metric;
        ] );
      ( "cluster properties",
        List.map QCheck_alcotest.to_alcotest [ prop_cluster_covers_everything ] );
      ( "benchmarks",
        [
          Alcotest.test_case "table1 suite" `Quick test_table1_suite;
          Alcotest.test_case "deterministic" `Quick test_synthetic_deterministic;
          Alcotest.test_case "fig1" `Quick test_fig1;
        ] );
    ]
