let test_grid_basics () =
  let g = Route.Grid.create ~cols:10 ~rows:5 in
  Alcotest.(check bool) "free initially" false (Route.Grid.blocked g (3, 3));
  Route.Grid.block g (3, 3);
  Alcotest.(check bool) "blocked after" true (Route.Grid.blocked g (3, 3));
  Alcotest.(check bool) "bounds" false (Route.Grid.in_bounds g (10, 0));
  Route.Grid.block g (99, 99) (* ignored *);
  Alcotest.(check bool) "occupancy" true
    (Route.Grid.occupancy g = 1.0 /. 50.0);
  let copy = Route.Grid.copy g in
  Route.Grid.block copy (0, 0);
  Alcotest.(check bool) "copy independent" false (Route.Grid.blocked g (0, 0))

let test_path_straight () =
  let g = Route.Grid.create ~cols:10 ~rows:10 in
  match Route.Maze.path g ~src:[ (0, 0) ] ~dst:[ (5, 0) ] with
  | None -> Alcotest.fail "no path on empty grid"
  | Some pts ->
      Alcotest.(check int) "shortest length" 6 (List.length pts);
      Alcotest.(check bool) "starts at src" true (List.hd pts = (0, 0));
      Alcotest.(check bool) "ends at dst" true
        (List.nth pts (List.length pts - 1) = (5, 0))

let test_path_detour () =
  let g = Route.Grid.create ~cols:10 ~rows:10 in
  (* wall across column 3 except row 9 *)
  for r = 0 to 8 do
    Route.Grid.block g (3, r)
  done;
  match Route.Maze.path g ~src:[ (0, 0) ] ~dst:[ (6, 0) ] with
  | None -> Alcotest.fail "detour exists"
  | Some pts ->
      (* must climb to row 9 and back: 6 right + 18 vertical + 1 = 25 *)
      Alcotest.(check int) "detour length" 25 (List.length pts);
      Alcotest.(check bool) "avoids wall" true
        (List.for_all (fun (c, r) -> not (c = 3 && r <= 8)) pts)

let test_path_blocked () =
  let g = Route.Grid.create ~cols:10 ~rows:10 in
  for r = 0 to 9 do
    Route.Grid.block g (3, r)
  done;
  Alcotest.(check bool) "fully walled" true
    (Route.Maze.path g ~src:[ (0, 0) ] ~dst:[ (6, 0) ] = None)

let test_multi_terminal () =
  let g = Route.Grid.create ~cols:20 ~rows:20 in
  let terminals = [ (0, 0); (10, 0); (5, 9) ] in
  match Route.Maze.route_net g ~terminals with
  | None -> Alcotest.fail "routable"
  | Some tree ->
      List.iter
        (fun t ->
          Alcotest.(check bool) "terminal covered" true (List.mem t tree))
        terminals;
      (* tree is connected: BFS over the tree cells *)
      let tbl = Hashtbl.create 64 in
      List.iter (fun p -> Hashtbl.replace tbl p ()) tree;
      let seen = Hashtbl.create 64 in
      let rec visit p =
        if Hashtbl.mem tbl p && not (Hashtbl.mem seen p) then begin
          Hashtbl.replace seen p ();
          let c, r = p in
          List.iter visit [ (c + 1, r); (c - 1, r); (c, r + 1); (c, r - 1) ]
        end
      in
      visit (List.hd tree);
      Alcotest.(check int) "connected" (List.length tree)
        (Hashtbl.length seen)

let sym_placement () =
  (* a mirrored pair + an on-axis tail, nets mirroring each other *)
  let circuit =
    Netlist.Circuit.make ~name:"dp"
      ~modules:
        [
          Netlist.Circuit.block ~name:"l" ~w:100 ~h:100;
          Netlist.Circuit.block ~name:"r" ~w:100 ~h:100;
          Netlist.Circuit.block ~name:"tail" ~w:100 ~h:100;
          Netlist.Circuit.block ~name:"outl" ~w:60 ~h:60;
          Netlist.Circuit.block ~name:"outr" ~w:60 ~h:60;
        ]
      ~nets:
        [
          Netlist.Net.make ~name:"nl" ~pins:[ 0; 3 ] ();
          Netlist.Net.make ~name:"nr" ~pins:[ 1; 4 ] ();
        ]
  in
  let place cell x y w h =
    Geometry.Transform.place ~cell ~x ~y ~w ~h ~orient:Geometry.Orientation.R0
  in
  (* axis at x = 300 (axis2 = 600) *)
  let placed =
    [
      place 0 100 0 100 100;
      place 1 400 0 100 100;
      place 2 250 120 100 100;
      place 3 0 240 60 60;
      place 4 540 240 60 60;
    ]
  in
  (Placer.Placement.make circuit placed,
   Constraints.Symmetry_group.make ~pairs:[ (0, 1); (3, 4) ] ~selfs:[ 2 ] ())

let test_mirrored_routing () =
  let placement, grp = sym_placement () in
  let result = Route.Router.route_all ~pitch:20 ~symmetric:[ grp ] placement in
  Alcotest.(check (list string)) "nothing failed" [] result.Route.Router.failed;
  Alcotest.(check int) "both nets routed" 2
    (List.length result.Route.Router.routed);
  Alcotest.(check int) "one mirrored pair" 1
    (List.length result.Route.Router.mirrored_pairs);
  (* exact mirror images *)
  let route name =
    (List.find (fun r -> r.Route.Router.net = name) result.Route.Router.routed)
      .Route.Router.points
  in
  let nl = route "nl" and nr = route "nr" in
  Alcotest.(check int) "equal lengths" (List.length nl) (List.length nr);
  (* recover the reflection constant from the outer pin pair *)
  let axis2_grid =
    let gc x = fst (Route.Grid.snap ~pitch:20 ~margin:4 (x, 0)) in
    gc 150 + gc 450
  in
  Alcotest.(check bool) "exact mirror" true
    (Route.Router.is_mirror_route ~axis2_grid nl nr)

let test_routes_disjoint () =
  let placement, grp = sym_placement () in
  let result = Route.Router.route_all ~pitch:20 ~symmetric:[ grp ] placement in
  let all =
    List.concat_map (fun r -> r.Route.Router.points) result.Route.Router.routed
  in
  let sorted = List.sort compare all in
  let rec dup = function
    | a :: b :: _ when a = b -> true
    | _ :: rest -> dup rest
    | [] -> false
  in
  Alcotest.(check bool) "no shared tracks" false (dup sorted)

let test_route_random_circuits () =
  let rng = Prelude.Rng.create 4 in
  List.iter
    (fun seed ->
      let b = Netlist.Benchmarks.synthetic ~label:"r" ~n:12 ~seed in
      let out =
        Placer.Sa_seqpair.place
          ~params:
            {
              (Anneal.Sa.default_params ~n:12) with
              Anneal.Sa.max_rounds = 40;
            }
          ~rng b.Netlist.Benchmarks.circuit
      in
      let result = Route.Router.route_all out.Placer.Sa_seqpair.placement in
      let total =
        List.length result.Route.Router.routed
        + List.length result.Route.Router.failed
      in
      Alcotest.(check int) "every net accounted for"
        (List.length b.Netlist.Benchmarks.circuit.Netlist.Circuit.nets)
        total;
      Alcotest.(check bool) "wirelength positive" true
        (result.Route.Router.wirelength > 0))
    [ 1; 2; 3 ]

let () =
  Alcotest.run "route"
    [
      ("grid", [ Alcotest.test_case "basics" `Quick test_grid_basics ]);
      ( "maze",
        [
          Alcotest.test_case "straight" `Quick test_path_straight;
          Alcotest.test_case "detour" `Quick test_path_detour;
          Alcotest.test_case "walled" `Quick test_path_blocked;
          Alcotest.test_case "multi-terminal" `Quick test_multi_terminal;
        ] );
      ( "router",
        [
          Alcotest.test_case "mirrored routing" `Quick test_mirrored_routing;
          Alcotest.test_case "disjoint tracks" `Quick test_routes_disjoint;
          Alcotest.test_case "random circuits" `Quick test_route_random_circuits;
        ] );
    ]
