let test_schedule_geometric () =
  let t =
    Anneal.Schedule.next (Anneal.Schedule.Geometric 0.9) ~temperature:100.0
      ~acceptance:0.5
  in
  Alcotest.(check (float 1e-9)) "geometric" 90.0 t

let test_schedule_adaptive () =
  let s = Anneal.Schedule.adaptive in
  let hot = Anneal.Schedule.next s ~temperature:100.0 ~acceptance:0.95 in
  let mid = Anneal.Schedule.next s ~temperature:100.0 ~acceptance:0.5 in
  let cold = Anneal.Schedule.next s ~temperature:100.0 ~acceptance:0.05 in
  Alcotest.(check bool) "hot cools faster" true (hot < mid);
  Alcotest.(check bool) "cold cools slower" true (cold > mid)

(* A rugged 1-D landscape the walker must cross barriers on. *)
let problem =
  {
    Anneal.Sa.init = 80;
    neighbor =
      (fun rng x ->
        let step = Prelude.Rng.int_in rng (-3) 3 in
        max (-100) (min 100 (x + step)));
    cost =
      (fun x ->
        let fx = float_of_int x in
        (0.01 *. fx *. fx) +. (3.0 *. sin (fx /. 4.0)));
  }

let test_sa_minimizes () =
  let rng = Prelude.Rng.create 17 in
  let params =
    { (Anneal.Sa.default_params ~n:10) with Anneal.Sa.max_rounds = 200 }
  in
  let out = Anneal.Sa.run ~rng params problem in
  (* global minimum is near x = -6 .. 0 with cost around -2.7 *)
  Alcotest.(check bool)
    (Printf.sprintf "found near-optimum (best %d cost %.2f)" out.Anneal.Sa.best
       out.Anneal.Sa.best_cost)
    true
    (out.Anneal.Sa.best_cost < -2.0);
  Alcotest.(check bool) "improved on init" true
    (out.Anneal.Sa.best_cost < problem.Anneal.Sa.cost problem.Anneal.Sa.init);
  Alcotest.(check bool) "counted evaluations" true (out.Anneal.Sa.evaluated > 0)

let test_estimate_t0 () =
  let rng = Prelude.Rng.create 5 in
  let t0 = Anneal.Sa.estimate_t0 ~rng problem ~samples:50 in
  Alcotest.(check bool) "positive" true (t0 > 0.0)

let test_deterministic () =
  let run () =
    let rng = Prelude.Rng.create 17 in
    (Anneal.Sa.run ~rng (Anneal.Sa.default_params ~n:10) problem).Anneal.Sa.best
  in
  Alcotest.(check int) "same seed same best" (run ()) (run ())

let () =
  Alcotest.run "anneal"
    [
      ( "schedule",
        [
          Alcotest.test_case "geometric" `Quick test_schedule_geometric;
          Alcotest.test_case "adaptive" `Quick test_schedule_adaptive;
        ] );
      ( "sa",
        [
          Alcotest.test_case "minimizes" `Quick test_sa_minimizes;
          Alcotest.test_case "estimate t0" `Quick test_estimate_t0;
          Alcotest.test_case "deterministic" `Quick test_deterministic;
        ] );
    ]
