open Shapefn

let test_shape_of_module () =
  let s = Shape.of_module ~cell:3 ~w:10 ~h:4 ~rotated:false in
  Alcotest.(check int) "w" 10 s.Shape.w;
  let r = Shape.of_module ~cell:3 ~w:10 ~h:4 ~rotated:true in
  Alcotest.(check (pair int int)) "rotated" (4, 10) (r.Shape.w, r.Shape.h);
  match Shape.realize s with
  | [ p ] ->
      Alcotest.(check int) "realize cell" 3 p.Geometry.Transform.cell;
      Alcotest.(check int) "at origin" 0 p.Geometry.Transform.rect.Geometry.Rect.x
  | _ -> Alcotest.fail "single module shape realizes to one placement"

let test_dominates () =
  let a = Shape.of_module ~cell:0 ~w:5 ~h:5 ~rotated:false in
  let b = Shape.of_module ~cell:0 ~w:6 ~h:5 ~rotated:false in
  Alcotest.(check bool) "a dominates b" true (Shape.dominates a b);
  Alcotest.(check bool) "b does not dominate a" false (Shape.dominates b a)

let test_front_pruning () =
  let mk w h = Shape.of_module ~cell:0 ~w ~h ~rotated:false in
  let fn = Shape_fn.of_shapes [ mk 10 2; mk 5 5; mk 2 10; mk 6 6; mk 10 2 ] in
  (* (6,6) dominated by (5,5); duplicate (10,2) collapsed *)
  Alcotest.(check (list (pair int int))) "front"
    [ (2, 10); (5, 5); (10, 2) ]
    (Shape_fn.points fn);
  Alcotest.(check int) "min area" 20 (Shape.area (Shape_fn.min_area fn))

let test_front_cap () =
  let mk w = Shape.of_module ~cell:0 ~w ~h:(1000 / w) ~rotated:false in
  let shapes = List.init 100 (fun i -> mk (i + 10)) in
  let fn = Shape_fn.of_shapes ~cap:10 shapes in
  Alcotest.(check bool) "capped" true (Shape_fn.cardinal fn <= 13);
  (* min area survives thinning *)
  let full = Shape_fn.of_shapes shapes in
  Alcotest.(check int) "min area kept"
    (Shape.area (Shape_fn.min_area full))
    (Shape.area (Shape_fn.min_area fn))

let test_rsf_addition () =
  let a = Shape.of_module ~cell:0 ~w:10 ~h:4 ~rotated:false in
  let b = Shape.of_module ~cell:1 ~w:3 ~h:7 ~rotated:false in
  let h = Esf.rsf_hadd a b in
  Alcotest.(check (pair int int)) "hadd" (13, 7) (h.Shape.w, h.Shape.h);
  let v = Esf.rsf_vadd a b in
  Alcotest.(check (pair int int)) "vadd" (10, 11) (v.Shape.w, v.Shape.h);
  (* realization is overlap-free and complete *)
  let placed = Shape.realize h in
  Alcotest.(check int) "two cells" 2 (List.length placed);
  Alcotest.(check bool) "overlap-free" true
    (Result.is_ok (Constraints.Placement_check.overlap_free placed))

let test_esf_interleave_fig7 () =
  (* Fig. 7: shape 1 = A wide on top of nothing at right + B; shape 2 =
     C over D. Build: shape1 = tall-bottom + short top-right overhang
     valley; shape2 slots its top-left cell into the valley. *)
  (* shape 1: cell 0 (8x2) with right child cell 1 (3x6): an L with a
     valley over x=3..8 at height 2 *)
  let t1 =
    {
      Bstar.Tree.cell = 0;
      left = None;
      right = Some (Bstar.Tree.leaf 1);
    }
  in
  let s1 =
    {
      Shape.w = 8;
      h = 8;
      payload =
        Shape.Btree
          { tree = t1; dims = [ (0, (8, 2)); (1, (3, 6)) ]; rigid = [] };
    }
  in
  (* shape 2: a single 5x4 cell *)
  let s2 = Shape.of_module ~cell:2 ~w:5 ~h:4 ~rotated:false in
  let sum = Esf.esf_hadd s1 s2 in
  (* bounding-box addition would be 13 wide; the tree addition drops
     cell 2 into the valley: x = 8 is the graft point? the bottom spine
     end of t1 is cell 0 (no left child), so cell 2 lands at x = 8 on
     the ground, width 13 ... but the rsf height is max(8,4)=8, while
     the esf one is also 8. Width comparison is what Fig. 7 shows when
     the valley fits -- craft it so interleaving wins: *)
  let rsf = Esf.rsf_hadd s1 s2 in
  Alcotest.(check bool) "esf no worse than boxes" true
    (sum.Shape.w * sum.Shape.h <= rsf.Shape.w * rsf.Shape.h);
  Alcotest.(check bool) "esf realization valid" true
    (Result.is_ok (Constraints.Placement_check.overlap_free (Shape.realize sum)))

let test_esf_vertical_tuck () =
  (* t1: two cells side by side, left tall, right short -> top surface
     has a valley over the right cell. A vertical ESF addition of a
     narrow cell should drop into the valley, beating h1+h2. *)
  let t1 =
    { Bstar.Tree.cell = 0; left = Some (Bstar.Tree.leaf 1); right = None }
  in
  let s1 =
    {
      Shape.w = 10;
      h = 8;
      payload =
        Shape.Btree
          { tree = t1; dims = [ (0, (5, 8)); (1, (5, 3)) ]; rigid = [] };
    }
  in
  let s2 = Shape.of_module ~cell:2 ~w:10 ~h:2 ~rotated:false in
  let esf = Esf.esf_vadd s1 s2 in
  let rsf = Esf.rsf_vadd s1 s2 in
  Alcotest.(check bool)
    (Printf.sprintf "esf area %d <= rsf area %d" (Shape.area esf)
       (Shape.area rsf))
    true
    (Shape.area esf <= Shape.area rsf);
  Alcotest.(check bool) "valid" true
    (Result.is_ok (Constraints.Placement_check.overlap_free (Shape.realize esf)))

let test_wrap_rigid () =
  let placed =
    [
      Geometry.Transform.place ~cell:0 ~x:0 ~y:0 ~w:4 ~h:4
        ~orient:Geometry.Orientation.R0;
      Geometry.Transform.place ~cell:1 ~x:4 ~y:0 ~w:4 ~h:4
        ~orient:Geometry.Orientation.R0;
    ]
  in
  let rigid = Shape.of_rigid placed in
  let wrapped = Esf.wrap_rigid rigid in
  Alcotest.(check (pair int int)) "same bbox" (rigid.Shape.w, rigid.Shape.h)
    (wrapped.Shape.w, wrapped.Shape.h);
  let re = Shape.realize wrapped in
  Alcotest.(check int) "two real cells" 2 (List.length re)

let dims_of_list l c = List.nth l c

let test_enumerate_free_pair () =
  let dims = dims_of_list [ (10, 4); (6, 6) ] in
  let fn = Enumerate.free_set ~dims [ 0; 1 ] in
  (* among the shapes: side-by-side (16,6) and stacked (10,10) and the
     rotated variants *)
  let points = Shape_fn.points fn in
  Alcotest.(check bool) "nonempty front" true (points <> []);
  List.iter
    (fun (w, h) ->
      Alcotest.(check bool) "covers both cells" true (w * h >= 76))
    points

let test_enumerate_symmetric () =
  let grp = Constraints.Symmetry_group.make ~pairs:[ (0, 1) ] ~selfs:[ 2 ] () in
  let dims = dims_of_list [ (8, 5); (8, 5); (6, 4) ] in
  let fn = Enumerate.symmetric_set ~dims grp in
  List.iter
    (fun s ->
      let placed = Shape.realize s in
      (match Constraints.Placement_check.symmetry ~group:grp placed with
      | Ok _ -> ()
      | Error v ->
          Alcotest.failf "island not symmetric: %a"
            Constraints.Placement_check.pp_violation v);
      Alcotest.(check bool) "overlap-free" true
        (Result.is_ok (Constraints.Placement_check.overlap_free placed)))
    (Shape_fn.shapes fn)

let test_enumerate_proximity_connected () =
  let dims = dims_of_list [ (10, 4); (6, 6); (3, 9) ] in
  let fn = Enumerate.proximity_set ~dims [ 0; 1; 2 ] in
  List.iter
    (fun s ->
      let rects =
        List.map
          (fun (p : Geometry.Transform.placed) -> p.Geometry.Transform.rect)
          (Shape.realize s)
      in
      Alcotest.(check bool) "connected" true (Geometry.Outline.connected rects))
    (Shape_fn.shapes fn)

let check_place mode (b : Netlist.Benchmarks.bench) =
  let r = Combine.place ~mode b.circuit b.hierarchy in
  let placement = Placer.Placement.make b.circuit r.Combine.placed in
  (match Placer.Placement.validate placement with
  | Ok () -> ()
  | Error m -> Alcotest.fail (b.label ^ ": " ^ m));
  Alcotest.(check bool) "area usage >= 100%" true (r.Combine.area_usage >= 100.0);
  r

let test_combine_suite () =
  List.iter
    (fun seed ->
      let b = Netlist.Benchmarks.synthetic ~label:"c" ~n:15 ~seed in
      let esf = check_place Combine.Esf b in
      let rsf = check_place Combine.Rsf b in
      Alcotest.(check bool)
        (Printf.sprintf "seed %d: esf %.2f <= rsf %.2f" seed
           esf.Combine.area_usage rsf.Combine.area_usage)
        true
        (esf.Combine.area_usage <= rsf.Combine.area_usage +. 0.75))
    [ 1; 2; 3; 4; 5; 6 ]

let test_combine_miller () =
  let b = Netlist.Benchmarks.miller () in
  ignore (check_place Combine.Esf b);
  ignore (check_place Combine.Rsf b)

let test_combine_respects_symmetry () =
  (* a design that is exactly one symmetric basic set plus a free cell *)
  let open Netlist in
  let circuit =
    Circuit.make ~name:"s"
      ~modules:
        [
          Circuit.block ~name:"a" ~w:8 ~h:5;
          Circuit.block ~name:"a2" ~w:8 ~h:5;
          Circuit.block ~name:"s" ~w:6 ~h:4;
          Circuit.block ~name:"free" ~w:9 ~h:9;
        ]
      ~nets:[]
  in
  let hierarchy =
    Hierarchy.node "top"
      [
        Hierarchy.node ~kind:Hierarchy.Symmetry "sym"
          [ Hierarchy.Leaf 0; Hierarchy.Leaf 1; Hierarchy.Leaf 2 ];
        Hierarchy.Leaf 3;
      ]
  in
  let r = Combine.place ~mode:Combine.Esf circuit hierarchy in
  let grp =
    Constraints.Symmetry_group.make ~pairs:[ (0, 1) ] ~selfs:[ 2 ] ()
  in
  match Constraints.Placement_check.symmetry ~group:grp r.Combine.placed with
  | Ok _ -> ()
  | Error v ->
      Alcotest.failf "deterministic placement broke symmetry: %a"
        Constraints.Placement_check.pp_violation v

let () =
  Alcotest.run "shapefn"
    [
      ( "shape",
        [
          Alcotest.test_case "of_module" `Quick test_shape_of_module;
          Alcotest.test_case "dominates" `Quick test_dominates;
        ] );
      ( "front",
        [
          Alcotest.test_case "pruning" `Quick test_front_pruning;
          Alcotest.test_case "capacity" `Quick test_front_cap;
        ] );
      ( "additions",
        [
          Alcotest.test_case "rsf" `Quick test_rsf_addition;
          Alcotest.test_case "esf horizontal (fig7)" `Quick test_esf_interleave_fig7;
          Alcotest.test_case "esf vertical tuck" `Quick test_esf_vertical_tuck;
          Alcotest.test_case "wrap rigid" `Quick test_wrap_rigid;
        ] );
      ( "enumerate",
        [
          Alcotest.test_case "free pair" `Quick test_enumerate_free_pair;
          Alcotest.test_case "symmetric islands" `Quick test_enumerate_symmetric;
          Alcotest.test_case "proximity connected" `Quick
            test_enumerate_proximity_connected;
        ] );
      ( "combine",
        [
          Alcotest.test_case "suite esf<=rsf" `Slow test_combine_suite;
          Alcotest.test_case "miller" `Quick test_combine_miller;
          Alcotest.test_case "symmetry kept" `Quick test_combine_respects_symmetry;
        ] );
    ]
