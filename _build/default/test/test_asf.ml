module G = Constraints.Symmetry_group
module Check = Constraints.Placement_check

let random_dims rng n pairs =
  let base =
    Array.init n (fun _ ->
        (2 + Prelude.Rng.int rng 30, 2 + Prelude.Rng.int rng 30))
  in
  List.iter (fun (a, b) -> base.(b) <- base.(a)) pairs;
  fun c -> base.(c)

let test_islands_random () =
  let rng = Prelude.Rng.create 7 in
  for _ = 1 to 300 do
    let pairs, selfs =
      match Prelude.Rng.int rng 4 with
      | 0 -> ([ (0, 1) ], [])
      | 1 -> ([ (0, 1) ], [ 2 ])
      | 2 -> ([ (0, 1); (2, 3) ], [ 4 ])
      | _ -> ([ (0, 1); (2, 3) ], [ 4; 5 ])
    in
    let n = List.length pairs * 2 + List.length selfs in
    let grp = G.make ~pairs ~selfs () in
    let dims = random_dims rng n pairs in
    let asf = ref (Bstar.Asf.make rng grp) in
    for _ = 1 to 5 do
      asf := Bstar.Asf.perturb rng !asf
    done;
    let island = Bstar.Asf.pack !asf dims in
    (match Check.overlap_free island.Bstar.Asf.placed with
    | Ok () -> ()
    | Error v -> Alcotest.failf "overlap: %a" Check.pp_violation v);
    (match Check.symmetry ~group:grp island.Bstar.Asf.placed with
    | Ok axis2 ->
        Alcotest.(check bool) "axis inside island" true
          (axis2 >= 0 && axis2 <= 2 * island.Bstar.Asf.width)
    | Error v -> Alcotest.failf "asymmetric: %a" Check.pp_violation v);
    (* island anchored at origin *)
    List.iter
      (fun (p : Geometry.Transform.placed) ->
        if p.Geometry.Transform.rect.Geometry.Rect.x < 0
           || p.Geometry.Transform.rect.Geometry.Rect.y < 0 then
          Alcotest.fail "negative coordinates")
      island.Bstar.Asf.placed
  done

let test_island_all_cells () =
  let rng = Prelude.Rng.create 3 in
  let grp = G.make ~pairs:[ (0, 1); (2, 3) ] ~selfs:[ 4 ] () in
  let dims = random_dims rng 5 grp.G.pairs in
  let island = Bstar.Asf.pack (Bstar.Asf.make rng grp) dims in
  let cells =
    List.sort Int.compare
      (List.map (fun (p : Geometry.Transform.placed) -> p.Geometry.Transform.cell)
         island.Bstar.Asf.placed)
  in
  Alcotest.(check (list int)) "all group cells placed" [ 0; 1; 2; 3; 4 ] cells

let test_mirror_orientation () =
  let rng = Prelude.Rng.create 5 in
  let grp = G.make ~pairs:[ (0, 1) ] ~selfs:[] () in
  let island = Bstar.Asf.pack (Bstar.Asf.make rng grp) (fun _ -> (10, 6)) in
  let orient c =
    (List.find
       (fun (p : Geometry.Transform.placed) -> p.Geometry.Transform.cell = c)
       island.Bstar.Asf.placed)
      .Geometry.Transform.orient
  in
  Alcotest.(check bool) "left cell mirrored" true
    (Geometry.Orientation.equal (orient 0) Geometry.Orientation.MY);
  Alcotest.(check bool) "right cell as drawn" true
    (Geometry.Orientation.equal (orient 1) Geometry.Orientation.R0)

let test_of_tree_validation () =
  let grp = G.make ~pairs:[ (0, 1) ] ~selfs:[ 2 ] () in
  (* valid: self 2 at root, rep 1 as left child *)
  let good = { Bstar.Tree.cell = 2; left = Some (Bstar.Tree.leaf 1); right = None } in
  (match Bstar.Asf.of_tree grp good with
  | _ -> ());
  (* invalid: self 2 as a left child (off the axis chain) *)
  let bad = { Bstar.Tree.cell = 1; left = Some (Bstar.Tree.leaf 2); right = None } in
  (match Bstar.Asf.of_tree grp bad with
  | exception Invalid_argument _ -> ()
  | _ -> Alcotest.fail "off-chain self accepted");
  (* invalid: wrong cell set (left cell of the pair instead of rep) *)
  let wrong = { Bstar.Tree.cell = 2; left = Some (Bstar.Tree.leaf 0); right = None } in
  match Bstar.Asf.of_tree grp wrong with
  | exception Invalid_argument _ -> ()
  | _ -> Alcotest.fail "wrong cells accepted"

let test_self_odd_width_padded () =
  let rng = Prelude.Rng.create 9 in
  let grp = G.make ~pairs:[ (0, 1) ] ~selfs:[ 2 ] () in
  let dims = function 2 -> (7, 5) | _ -> (10, 6) in
  let island = Bstar.Asf.pack (Bstar.Asf.make rng grp) dims in
  match Check.symmetry ~group:grp island.Bstar.Asf.placed with
  | Ok _ -> ()
  | Error v -> Alcotest.failf "odd self: %a" Check.pp_violation v

let () =
  Alcotest.run "asf"
    [
      ( "islands",
        [
          Alcotest.test_case "random islands symmetric" `Quick test_islands_random;
          Alcotest.test_case "all cells placed" `Quick test_island_all_cells;
          Alcotest.test_case "mirror orientation" `Quick test_mirror_orientation;
          Alcotest.test_case "odd self padded" `Quick test_self_odd_width_padded;
        ] );
      ( "of_tree",
        [ Alcotest.test_case "validation" `Quick test_of_tree_validation ] );
    ]
