open Geometry

let unit x y = Rect.make ~x ~y ~w:10 ~h:8

let test_gradient_linear () =
  let m = { Mismatch.Gradient.slope = 2.0; theta = 0.0; local_sigma = 0.0 } in
  Alcotest.(check (float 1e-9)) "along x" 20.0
    (Mismatch.Gradient.gradient_at m (10.0, 99.0));
  let m90 =
    { Mismatch.Gradient.slope = 2.0; theta = Float.pi /. 2.0; local_sigma = 0.0 }
  in
  Alcotest.(check bool) "along y" true
    (Float.abs (Mismatch.Gradient.gradient_at m90 (99.0, 10.0) -. 20.0) < 1e-9)

let test_centroid_cancels_gradient_exactly () =
  (* ABBA: A at cols 0,3; B at cols 1,2 -- common centroid *)
  let a = [ unit 0 0; unit 30 0 ] in
  let b = [ unit 10 0; unit 20 0 ] in
  let rng = Prelude.Rng.create 3 in
  for _ = 1 to 100 do
    let m =
      {
        (Mismatch.Gradient.sample_model rng ~slope_mag:1.0 ~local_sigma:0.0) with
        Mismatch.Gradient.local_sigma = 0.0;
      }
    in
    let off = Mismatch.Gradient.pair_offset m rng a b in
    if Float.abs off > 1e-9 then
      Alcotest.failf "gradient leaked through common centroid: %g" off
  done

let test_side_by_side_sees_gradient () =
  (* AABB: centroids differ by 2 columns *)
  let a = [ unit 0 0; unit 10 0 ] in
  let b = [ unit 20 0; unit 30 0 ] in
  let m = { Mismatch.Gradient.slope = 1.0; theta = 0.0; local_sigma = 0.0 } in
  let rng = Prelude.Rng.create 1 in
  let off = Mismatch.Gradient.pair_offset m rng a b in
  Alcotest.(check (float 1e-9)) "offset = slope * centroid distance" 20.0
    (Float.abs off)

let test_local_floor_scales_with_units () =
  let rng = Prelude.Rng.create 5 in
  let mk k x0 = List.init k (fun i -> unit (x0 + (10 * i)) 0) in
  (* no gradient: sigma(off) = local * sqrt(2/k) *)
  let sigma k =
    Mismatch.Gradient.monte_carlo rng ~trials:4000 ~slope_mag:0.0
      ~local_sigma:1.0
      (mk k 0, mk k 1000)
  in
  let s1 = sigma 1 and s4 = sigma 4 in
  Alcotest.(check bool)
    (Printf.sprintf "sqrt-k averaging (s1 %.3f s4 %.3f)" s1 s4)
    true
    (Float.abs (s1 -. sqrt 2.0) < 0.1 && Float.abs (s4 -. (sqrt 2.0 /. 2.0)) < 0.06)

let test_mc_ordering () =
  let rng = Prelude.Rng.create 9 in
  let a_cc = [ unit 0 0; unit 30 0 ] and b_cc = [ unit 10 0; unit 20 0 ] in
  let a_sbs = [ unit 0 0; unit 10 0 ] and b_sbs = [ unit 20 0; unit 30 0 ] in
  let a_far = [ unit 0 0; unit 10 0 ] and b_far = [ unit 500 0; unit 510 0 ] in
  let mc pair =
    Mismatch.Gradient.monte_carlo rng ~trials:2000 ~slope_mag:0.01
      ~local_sigma:0.02 pair
  in
  let cc = mc (a_cc, b_cc) and sbs = mc (a_sbs, b_sbs) and far = mc (a_far, b_far) in
  Alcotest.(check bool)
    (Printf.sprintf "cc %.4f < sbs %.4f < far %.4f" cc sbs far)
    true
    (cc < sbs && sbs < far)

let () =
  Alcotest.run "mismatch"
    [
      ( "gradient",
        [
          Alcotest.test_case "linearity" `Quick test_gradient_linear;
          Alcotest.test_case "centroid cancels" `Quick
            test_centroid_cancels_gradient_exactly;
          Alcotest.test_case "side by side" `Quick test_side_by_side_sees_gradient;
        ] );
      ( "monte carlo",
        [
          Alcotest.test_case "local floor" `Quick test_local_floor_scales_with_units;
          Alcotest.test_case "layout ordering" `Quick test_mc_ordering;
        ] );
    ]
