module H = Netlist.Hierarchy
module Check = Constraints.Placement_check

let small_params =
  {
    Anneal.Sa.initial_temperature = None;
    final_temperature = 1e-2;
    moves_per_round = 60;
    schedule = Anneal.Schedule.default;
    frozen_rounds = 4;
    max_rounds = 40;
  }

let test_fig2_constraints () =
  let b = Netlist.Benchmarks.fig2_design () in
  let rng = Prelude.Rng.create 42 in
  let out =
    Bstar.Hbstar.place ~params:small_params ~rng b.Netlist.Benchmarks.circuit
      b.Netlist.Benchmarks.hierarchy
  in
  let placed = out.Bstar.Hbstar.placed in
  (match Check.overlap_free placed with
  | Ok () -> ()
  | Error v -> Alcotest.failf "overlap: %a" Check.pp_violation v);
  (* all 11 modules placed *)
  Alcotest.(check int) "all modules" 11 (List.length placed);
  (* the hierarchical symmetry group D,E (+A self) holds *)
  let groups = Constraints.Symmetry_group.of_hierarchy b.Netlist.Benchmarks.hierarchy in
  List.iter
    (fun g ->
      match Check.symmetry ~group:g placed with
      | Ok _ -> ()
      | Error v -> Alcotest.failf "symmetry: %a" Check.pp_violation v)
    groups;
  (* common-centroid {H, I} *)
  (match Check.common_centroid ~members:[ 7; 8 ] placed with
  | Ok () -> ()
  | Error v -> Alcotest.failf "centroid: %a" Check.pp_violation v);
  (* proximity {G, J, K} is connected in the annealed result *)
  match Check.proximity ~members:[ 6; 9; 10 ] placed with
  | Ok () -> ()
  | Error v -> Alcotest.failf "proximity: %a" Check.pp_violation v

let test_pack_deterministic () =
  let b = Netlist.Benchmarks.fig2_design () in
  let st =
    Bstar.Hbstar.initial (Prelude.Rng.create 1) b.Netlist.Benchmarks.circuit
      b.Netlist.Benchmarks.hierarchy
  in
  Alcotest.(check bool) "same state packs identically" true
    (Bstar.Hbstar.pack st = Bstar.Hbstar.pack st)

let test_perturb_keeps_validity () =
  let b = Netlist.Benchmarks.fig2_design () in
  let rng = Prelude.Rng.create 11 in
  let st =
    ref
      (Bstar.Hbstar.initial rng b.Netlist.Benchmarks.circuit
         b.Netlist.Benchmarks.hierarchy)
  in
  for _ = 1 to 100 do
    st := Bstar.Hbstar.perturb rng !st;
    let placed = Bstar.Hbstar.pack !st in
    (match Check.overlap_free placed with
    | Ok () -> ()
    | Error v -> Alcotest.failf "overlap after perturb: %a" Check.pp_violation v);
    Alcotest.(check int) "module count stable" 11 (List.length placed)
  done

let test_miller_place () =
  let b = Netlist.Benchmarks.miller () in
  let rng = Prelude.Rng.create 3 in
  let out =
    Bstar.Hbstar.place ~params:small_params ~rng b.Netlist.Benchmarks.circuit
      b.Netlist.Benchmarks.hierarchy
  in
  Alcotest.(check int) "9 modules" 9 (List.length out.Bstar.Hbstar.placed);
  Alcotest.(check bool) "overlap-free" true
    (Result.is_ok (Check.overlap_free out.Bstar.Hbstar.placed));
  (* DP symmetry from recognition must hold in the placement *)
  let groups =
    Constraints.Symmetry_group.of_hierarchy b.Netlist.Benchmarks.hierarchy
  in
  Alcotest.(check bool) "at least one group" true (groups <> []);
  List.iter
    (fun g ->
      match Check.symmetry ~group:g out.Bstar.Hbstar.placed with
      | Ok _ -> ()
      | Error v -> Alcotest.failf "miller symmetry: %a" Check.pp_violation v)
    groups

let test_synthetic_designs () =
  let rng = Prelude.Rng.create 8 in
  List.iter
    (fun seed ->
      let b = Netlist.Benchmarks.synthetic ~label:"t" ~n:18 ~seed in
      let st =
        Bstar.Hbstar.initial rng b.Netlist.Benchmarks.circuit
          b.Netlist.Benchmarks.hierarchy
      in
      let placed = Bstar.Hbstar.pack st in
      Alcotest.(check int) "all placed" 18 (List.length placed);
      Alcotest.(check bool) "overlap-free" true
        (Result.is_ok (Check.overlap_free placed)))
    [ 1; 2; 3; 4; 5 ]

let test_leaf_hierarchy () =
  let c =
    Netlist.Circuit.make ~name:"one"
      ~modules:[ Netlist.Circuit.block ~name:"m" ~w:10 ~h:5 ]
      ~nets:[]
  in
  let st = Bstar.Hbstar.initial (Prelude.Rng.create 0) c (H.Leaf 0) in
  Alcotest.(check int) "single module" 1 (List.length (Bstar.Hbstar.pack st))

let test_invalid_hierarchy_rejected () =
  let c =
    Netlist.Circuit.make ~name:"two"
      ~modules:
        [
          Netlist.Circuit.block ~name:"a" ~w:10 ~h:5;
          Netlist.Circuit.block ~name:"b" ~w:10 ~h:5;
        ]
      ~nets:[]
  in
  match Bstar.Hbstar.initial (Prelude.Rng.create 0) c (H.Leaf 0) with
  | exception Invalid_argument _ -> ()
  | _ -> Alcotest.fail "incomplete hierarchy accepted"

let test_halo_makes_rings_clear () =
  let b = Netlist.Benchmarks.fig2_design () in
  let rng = Prelude.Rng.create 21 in
  let out =
    Bstar.Hbstar.place ~params:small_params ~halo:40 ~rng
      b.Netlist.Benchmarks.circuit b.Netlist.Benchmarks.hierarchy
  in
  let placement =
    Placer.Placement.make b.Netlist.Benchmarks.circuit out.Bstar.Hbstar.placed
  in
  (match Placer.Placement.validate placement with
  | Ok () -> ()
  | Error m -> Alcotest.fail m);
  let rings =
    Placer.Finishing.guard_rings ~clearance:10 ~thickness:20 placement
      b.Netlist.Benchmarks.hierarchy
  in
  Alcotest.(check int) "one proximity ring" 1 (List.length rings);
  List.iter
    (fun r ->
      Alcotest.(check bool) "sealed" true r.Placer.Finishing.sealed;
      Alcotest.(check bool) "clear with halo" true r.Placer.Finishing.clear)
    rings

let () =
  Alcotest.run "hbstar"
    [
      ( "fig2",
        [
          Alcotest.test_case "constraints hold" `Slow test_fig2_constraints;
          Alcotest.test_case "deterministic pack" `Quick test_pack_deterministic;
          Alcotest.test_case "perturb validity" `Quick test_perturb_keeps_validity;
        ] );
      ( "circuits",
        [
          Alcotest.test_case "miller" `Slow test_miller_place;
          Alcotest.test_case "synthetic" `Quick test_synthetic_designs;
          Alcotest.test_case "single leaf" `Quick test_leaf_hierarchy;
          Alcotest.test_case "invalid hierarchy" `Quick
            test_invalid_hierarchy_rejected;
        ] );
      ( "finishing",
        [
          Alcotest.test_case "halo + guard rings" `Slow
            test_halo_makes_rings_clear;
        ] );
    ]
