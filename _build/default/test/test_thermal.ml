open Geometry

let place cell x y w h =
  Transform.place ~cell ~x ~y ~w ~h ~orient:Orientation.R0

let test_kernel_decay () =
  let s = [ { Thermal.Field.cx = 0.0; cy = 0.0; power = 1.0 } ] in
  let near = Thermal.Field.temperature s ~x:10.0 ~y:0.0 in
  let far = Thermal.Field.temperature s ~x:1000.0 ~y:0.0 in
  Alcotest.(check bool) "monotone decay" true (near > far && far > 0.0)

let test_superposition () =
  let s1 = [ { Thermal.Field.cx = 0.0; cy = 0.0; power = 1.0 } ] in
  let s2 = [ { Thermal.Field.cx = 100.0; cy = 50.0; power = 2.0 } ] in
  let t1 = Thermal.Field.temperature s1 ~x:30.0 ~y:40.0 in
  let t2 = Thermal.Field.temperature s2 ~x:30.0 ~y:40.0 in
  let t12 = Thermal.Field.temperature (s1 @ s2) ~x:30.0 ~y:40.0 in
  Alcotest.(check (float 1e-12)) "linear" (t1 +. t2) t12

let test_symmetric_pair_zero_mismatch () =
  (* radiator centered on the axis (x = 50), pair mirrored about it *)
  let placed =
    [
      place 0 40 100 20 20 (* radiator, center x = 50 *);
      place 1 0 0 10 10 (* left of pair, center x = 5 *);
      place 2 90 0 10 10 (* right of pair, center x = 95 *);
    ]
  in
  let sources =
    Thermal.Field.sources_of_placement
      ~power:(fun c -> if c = 0 then 0.05 else 0.0)
      placed
  in
  Alcotest.(check (float 0.0)) "exactly zero mismatch" 0.0
    (Thermal.Field.pair_mismatch sources placed (1, 2))

let test_asymmetric_pair_mismatch () =
  let placed =
    [
      place 0 40 100 20 20;
      place 1 0 0 10 10;
      place 2 60 0 10 10 (* not mirrored *);
    ]
  in
  let sources =
    Thermal.Field.sources_of_placement
      ~power:(fun c -> if c = 0 then 0.05 else 0.0)
      placed
  in
  Alcotest.(check bool) "positive mismatch" true
    (Thermal.Field.pair_mismatch sources placed (1, 2) > 1e-9)

let test_self_heating_excluded () =
  let placed = [ place 0 0 0 10 10; place 1 100 0 10 10 ] in
  let sources =
    Thermal.Field.sources_of_placement ~power:(fun _ -> 1.0) placed
  in
  (* cell 0 sees only cell 1's radiator *)
  let expect =
    Thermal.Field.temperature
      [ { Thermal.Field.cx = 105.0; cy = 5.0; power = 1.0 } ]
      ~x:5.0 ~y:5.0
  in
  Alcotest.(check (float 1e-12)) "own source excluded" expect
    (Thermal.Field.at_cell sources placed 0)

let test_worst_gradient () =
  let placed =
    [ place 0 0 0 10 10; place 1 50 0 10 10; place 2 500 0 10 10 ]
  in
  let sources =
    Thermal.Field.sources_of_placement
      ~power:(fun c -> if c = 0 then 1.0 else 0.0)
      placed
  in
  let g = Thermal.Field.worst_gradient sources placed in
  Alcotest.(check bool) "positive gradient" true (g > 0.0);
  (* the radiator cell itself sees no other source (temperature 0), so
     the gradient runs from the near cell down to the radiator *)
  let near = Thermal.Field.at_cell sources placed 1 in
  Alcotest.(check (float 1e-12)) "near minus zero" near g

let test_symmetric_placement_flow () =
  (* end-to-end: symmetric SA placement of a pair + on-axis radiator
     has exactly zero thermal mismatch; unconstrained placement
     generally does not *)
  let circuit =
    Netlist.Circuit.make ~name:"thermal"
      ~modules:
        [
          Netlist.Circuit.block ~name:"a" ~w:100 ~h:80;
          Netlist.Circuit.block ~name:"a'" ~w:100 ~h:80;
          Netlist.Circuit.block ~name:"heat" ~w:120 ~h:120;
          Netlist.Circuit.block ~name:"x" ~w:60 ~h:140;
          Netlist.Circuit.block ~name:"y" ~w:90 ~h:50;
        ]
      ~nets:[]
  in
  let grp =
    Constraints.Symmetry_group.make ~pairs:[ (0, 1) ] ~selfs:[ 2 ] ()
  in
  let power c = if c = 2 then 0.1 else 0.0 in
  let params =
    {
      Anneal.Sa.initial_temperature = None;
      final_temperature = 1e-2;
      moves_per_round = 50;
      schedule = Anneal.Schedule.default;
      frozen_rounds = 4;
      max_rounds = 30;
    }
  in
  let rng = Prelude.Rng.create 5 in
  let sym = Placer.Sa_seqpair.place ~params ~groups:[ grp ] ~rng circuit in
  let placed = sym.Placer.Sa_seqpair.placement.Placer.Placement.placed in
  let sources = Thermal.Field.sources_of_placement ~power placed in
  Alcotest.(check (float 0.0)) "symmetric placement: zero mismatch" 0.0
    (Thermal.Field.pair_mismatch sources placed (0, 1))

let () =
  Alcotest.run "thermal"
    [
      ( "field",
        [
          Alcotest.test_case "kernel decay" `Quick test_kernel_decay;
          Alcotest.test_case "superposition" `Quick test_superposition;
          Alcotest.test_case "symmetric pair" `Quick
            test_symmetric_pair_zero_mismatch;
          Alcotest.test_case "asymmetric pair" `Quick
            test_asymmetric_pair_mismatch;
          Alcotest.test_case "self heating" `Quick test_self_heating_excluded;
          Alcotest.test_case "worst gradient" `Quick test_worst_gradient;
        ] );
      ( "flow",
        [
          Alcotest.test_case "symmetric SA placement" `Quick
            test_symmetric_placement_flow;
        ] );
    ]
