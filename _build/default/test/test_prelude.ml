let test_determinism () =
  let a = Prelude.Rng.create 7 and b = Prelude.Rng.create 7 in
  let sa = List.init 100 (fun _ -> Prelude.Rng.int a 1000) in
  let sb = List.init 100 (fun _ -> Prelude.Rng.int b 1000) in
  Alcotest.(check (list int)) "same seed same stream" sa sb;
  let c = Prelude.Rng.create 8 in
  let sc = List.init 100 (fun _ -> Prelude.Rng.int c 1000) in
  Alcotest.(check bool) "different seed differs" true (sa <> sc)

let test_split_independent () =
  let a = Prelude.Rng.create 7 in
  let b = Prelude.Rng.split a in
  let sa = List.init 50 (fun _ -> Prelude.Rng.int a 1000) in
  let sb = List.init 50 (fun _ -> Prelude.Rng.int b 1000) in
  Alcotest.(check bool) "split stream differs" true (sa <> sb)

let test_int_bounds () =
  let rng = Prelude.Rng.create 3 in
  for _ = 1 to 10_000 do
    let v = Prelude.Rng.int rng 17 in
    if v < 0 || v >= 17 then Alcotest.fail "out of range"
  done;
  Alcotest.(check_raises) "zero bound"
    (Invalid_argument "Rng.int: non-positive bound") (fun () ->
      ignore (Prelude.Rng.int rng 0))

let test_int_in () =
  let rng = Prelude.Rng.create 5 in
  for _ = 1 to 1000 do
    let v = Prelude.Rng.int_in rng (-3) 4 in
    if v < -3 || v > 4 then Alcotest.fail "out of range"
  done

let test_permutation () =
  let rng = Prelude.Rng.create 9 in
  for n = 1 to 20 do
    let p = Prelude.Rng.permutation rng n in
    let sorted = Array.copy p in
    Array.sort Int.compare sorted;
    Alcotest.(check (array int)) "is a permutation" (Array.init n Fun.id) sorted
  done

let test_choose_weighted () =
  let rng = Prelude.Rng.create 12 in
  let picks =
    List.init 2000 (fun _ ->
        Prelude.Rng.choose_weighted rng [ (9.0, "a"); (1.0, "b") ])
  in
  let a_count = List.length (List.filter (String.equal "a") picks) in
  Alcotest.(check bool) "weighting respected"
    true
    (a_count > 1500 && a_count < 2000)

let test_gaussian () =
  let rng = Prelude.Rng.create 21 in
  let xs = List.init 5000 (fun _ -> Prelude.Rng.gaussian rng) in
  let m = Prelude.Stats.mean xs and sd = Prelude.Stats.stddev xs in
  Alcotest.(check bool) "mean near 0" true (Float.abs m < 0.1);
  Alcotest.(check bool) "sd near 1" true (Float.abs (sd -. 1.0) < 0.1)

let test_stats () =
  Alcotest.(check (float 1e-9)) "mean" 2.0 (Prelude.Stats.mean [ 1.0; 2.0; 3.0 ]);
  Alcotest.(check (float 1e-9)) "mean empty" 0.0 (Prelude.Stats.mean []);
  Alcotest.(check (float 1e-9)) "geo mean" 2.0
    (Prelude.Stats.geo_mean [ 1.0; 2.0; 4.0 ]);
  Alcotest.(check (float 1e-6)) "stddev" 0.816496580927726
    (Prelude.Stats.stddev [ 1.0; 2.0; 3.0 ]);
  Alcotest.(check (float 1e-9)) "percent" 25.0 (Prelude.Stats.percent 1.0 4.0);
  Alcotest.(check (float 1e-9)) "percent div0" 0.0 (Prelude.Stats.percent 1.0 0.0)

let prop_shuffle_permutes =
  QCheck.Test.make ~name:"shuffle preserves multiset" ~count:200
    QCheck.(pair small_int (list small_int))
    (fun (seed, xs) ->
      let rng = Prelude.Rng.create seed in
      let arr = Array.of_list xs in
      Prelude.Rng.shuffle rng arr;
      List.sort Int.compare (Array.to_list arr) = List.sort Int.compare xs)

let () =
  Alcotest.run "prelude"
    [
      ( "rng",
        [
          Alcotest.test_case "determinism" `Quick test_determinism;
          Alcotest.test_case "split" `Quick test_split_independent;
          Alcotest.test_case "int bounds" `Quick test_int_bounds;
          Alcotest.test_case "int_in" `Quick test_int_in;
          Alcotest.test_case "permutation" `Quick test_permutation;
          Alcotest.test_case "choose_weighted" `Quick test_choose_weighted;
          Alcotest.test_case "gaussian" `Quick test_gaussian;
        ] );
      ("stats", [ Alcotest.test_case "basics" `Quick test_stats ]);
      ( "properties",
        List.map QCheck_alcotest.to_alcotest [ prop_shuffle_permutes ] );
    ]
