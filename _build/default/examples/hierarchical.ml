(* The survey's Fig. 2 layout-design hierarchy placed with HB*-trees:
   hierarchical symmetry (a differential pair, a self-symmetric cell
   and a nested common-centroid group sharing one axis, cf. Fig. 4),
   a proximity cluster sharing a well, and free cells.

     dune exec examples/hierarchical.exe
*)

let () =
  let b = Netlist.Benchmarks.fig2_design () in
  let circuit = b.Netlist.Benchmarks.circuit in
  let hierarchy = b.Netlist.Benchmarks.hierarchy in
  Format.printf "design hierarchy (cf. Fig. 2): %a@.@." Netlist.Hierarchy.pp
    hierarchy;

  let rng = Prelude.Rng.create 7 in
  let out = Bstar.Hbstar.place ~rng circuit hierarchy in
  let placement = Placer.Placement.make circuit out.Bstar.Hbstar.placed in
  print_string (Placer.Plot.ascii ~width:64 placement);
  Printf.printf "\narea %d   HPWL %.0f   dead space %d\n" out.Bstar.Hbstar.area
    out.Bstar.Hbstar.hpwl
    (Placer.Placement.dead_space placement);

  (* verify every constraint the hierarchy declares *)
  let placed = out.Bstar.Hbstar.placed in
  List.iter
    (fun (name, kind, members) ->
      match kind with
      | Netlist.Hierarchy.Symmetry ->
          () (* flat groups are checked below via of_hierarchy *)
      | Netlist.Hierarchy.Common_centroid ->
          Printf.printf "common-centroid %s: %b\n" name
            (Result.is_ok
               (Constraints.Placement_check.common_centroid ~members placed))
      | Netlist.Hierarchy.Proximity ->
          Printf.printf "proximity %s connected: %b\n" name
            (Result.is_ok
               (Constraints.Placement_check.proximity ~members placed))
      | Netlist.Hierarchy.Free -> ())
    (Netlist.Hierarchy.constraint_nodes hierarchy);
  List.iter
    (fun g ->
      match
        Constraints.Placement_check.symmetry ~group:g placed
      with
      | Ok axis2 ->
          Printf.printf "symmetry %s holds about x = %.1f\n"
            g.Constraints.Symmetry_group.name
            (float_of_int axis2 /. 2.0)
      | Error v ->
          Format.printf "symmetry %s VIOLATED: %a@."
            g.Constraints.Symmetry_group.name
            Constraints.Placement_check.pp_violation v)
    (Constraints.Symmetry_group.of_hierarchy hierarchy);
  Placer.Plot.write_svg ~path:"hierarchical.svg" placement;
  print_endline "wrote hierarchical.svg"
