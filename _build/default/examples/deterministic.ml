(* Deterministic analog placement by hierarchically bounded enumeration
   (survey SIV): enumerate every placement of each basic module set,
   then combine shape functions bottom-up -- once with enhanced shape
   functions (B*-tree payloads, interleaving additions) and once with
   regular bounding-box shape functions, showing the area/runtime
   trade-off of Table I on one circuit.

     dune exec examples/deterministic.exe [n] [seed]
*)

let () =
  let n =
    if Array.length Sys.argv > 1 then int_of_string Sys.argv.(1) else 22
  in
  let seed =
    if Array.length Sys.argv > 2 then int_of_string Sys.argv.(2) else 103
  in
  let b = Netlist.Benchmarks.synthetic ~label:"example" ~n ~seed in
  let circuit = b.Netlist.Benchmarks.circuit in
  let hierarchy = b.Netlist.Benchmarks.hierarchy in
  Format.printf "hierarchy: %a@.@." Netlist.Hierarchy.pp hierarchy;
  Printf.printf "basic module sets:\n";
  List.iter
    (fun (name, kind, cells) ->
      Printf.printf "  %-8s %-16s {%s}\n" name
        (Netlist.Hierarchy.kind_to_string kind)
        (String.concat "," (List.map string_of_int cells)))
    (Netlist.Hierarchy.basic_module_sets hierarchy);

  let run mode label =
    let r = Shapefn.Combine.place ~mode circuit hierarchy in
    Printf.printf
      "\n%s: best %dx%d, area usage %.2f%%, %d Pareto shapes, %.3fs\n" label
      r.Shapefn.Combine.best.Shapefn.Shape.w r.Shapefn.Combine.best.Shapefn.Shape.h
      r.Shapefn.Combine.area_usage
      (Shapefn.Shape_fn.cardinal r.Shapefn.Combine.shape_fn)
      r.Shapefn.Combine.seconds;
    r
  in
  let esf = run Shapefn.Combine.Esf "enhanced shape functions" in
  let rsf = run Shapefn.Combine.Rsf "regular shape functions " in
  Printf.printf "\narea improvement from interleaving: %.2f%%\n"
    (rsf.Shapefn.Combine.area_usage -. esf.Shapefn.Combine.area_usage);
  print_newline ();
  print_string
    (Placer.Plot.ascii_shape_fn
       [
         Shapefn.Shape_fn.points esf.Shapefn.Combine.shape_fn;
         Shapefn.Shape_fn.points rsf.Shapefn.Combine.shape_fn;
       ]);
  print_endline "series [0]=ESF (*)  [1]=RSF (o)";
  let placement =
    Placer.Placement.make circuit esf.Shapefn.Combine.placed
  in
  print_string (Placer.Plot.ascii ~width:64 placement);
  Placer.Plot.write_svg ~path:"deterministic.svg" placement;
  print_endline "wrote deterministic.svg"
