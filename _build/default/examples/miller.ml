(* The survey's Fig. 6 Miller op amp, end to end: netlist -> automatic
   hierarchy -> both placement engines (deterministic enhanced-shape-
   function and annealed HB*-tree) -> SVG.

     dune exec examples/miller.exe
*)

let () =
  let b = Netlist.Benchmarks.miller () in
  let circuit = b.Netlist.Benchmarks.circuit in
  let hierarchy = b.Netlist.Benchmarks.hierarchy in
  Format.printf "netlist:@.%s@." Netlist.Benchmarks.miller_netlist;
  Format.printf "recognized hierarchy (cf. Fig. 6): %a@.@." Netlist.Hierarchy.pp
    hierarchy;

  (* deterministic placement (survey SIV) *)
  let det = Shapefn.Combine.place ~mode:Shapefn.Combine.Esf circuit hierarchy in
  let det_placement = Placer.Placement.make circuit det.Shapefn.Combine.placed in
  Printf.printf "deterministic ESF placement: area usage %.2f%% in %.3fs\n"
    det.Shapefn.Combine.area_usage det.Shapefn.Combine.seconds;
  print_string (Placer.Plot.ascii ~width:60
       ~labels:(Placer.Plot.device_labels det_placement) det_placement);
  Placer.Plot.write_svg ~path:"miller_esf.svg" det_placement;

  (* annealed HB*-tree placement (survey SIII) *)
  let rng = Prelude.Rng.create 11 in
  let hb = Bstar.Hbstar.place ~rng circuit hierarchy in
  let hb_placement = Placer.Placement.make circuit hb.Bstar.Hbstar.placed in
  Printf.printf "\nHB*-tree placement: area %d, HPWL %.0f, %d SA rounds\n"
    hb.Bstar.Hbstar.area hb.Bstar.Hbstar.hpwl hb.Bstar.Hbstar.sa_rounds;
  print_string (Placer.Plot.ascii ~width:60
       ~labels:(Placer.Plot.device_labels hb_placement) hb_placement);
  Placer.Plot.write_svg ~path:"miller_hbstar.svg" hb_placement;

  (* the differential pair must be mirror-symmetric in both flows *)
  let groups = Constraints.Symmetry_group.of_hierarchy hierarchy in
  List.iter
    (fun g ->
      Printf.printf "group %s symmetric: ESF %b / HB* %b\n"
        g.Constraints.Symmetry_group.name
        (Result.is_ok
           (Constraints.Placement_check.symmetry ~group:g
              det.Shapefn.Combine.placed))
        (Result.is_ok
           (Constraints.Placement_check.symmetry ~group:g
              hb.Bstar.Hbstar.placed)))
    groups;
  print_endline "wrote miller_esf.svg and miller_hbstar.svg"
