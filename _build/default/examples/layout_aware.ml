(* Layout-aware sizing of the two-stage Miller op amp (survey SV):
   the same optimizer run blind to layout and with in-loop template
   generation + parasitic extraction, reproducing the Fig. 10 contrast.

     dune exec examples/layout_aware.exe
*)

let print_perf label perf =
  Printf.printf "%s\n" label;
  List.iter (fun (k, v) -> Printf.printf "    %-12s %10.3f\n" k v) perf

let () =
  let specs = Sizing.Flow.default_specs in
  Printf.printf "specifications:\n";
  List.iter (fun s -> Format.printf "  %a@." Sizing.Spec.pp s) specs;

  let run mode label =
    let rng = Prelude.Rng.create 2009 in
    let o = Sizing.Flow.run ~rng mode in
    Printf.printf "\n=== %s ===\n" label;
    Format.printf "final sizing:@.%a@." Sizing.Design.pp o.Sizing.Flow.design;
    Printf.printf "layout: %.1f x %.1f um, area %.0f um^2\n"
      o.Sizing.Flow.layout.Sizing.Template.width_um
      o.Sizing.Flow.layout.Sizing.Template.height_um
      o.Sizing.Flow.layout.Sizing.Template.area_um2;
    print_perf "  performance without parasitics:" o.Sizing.Flow.perf_nominal;
    print_perf "  performance with extracted parasitics:"
      o.Sizing.Flow.perf_extracted;
    Printf.printf
      "  specs met: nominal %b, extracted %b; %d evaluations, extraction \
       %.0f%% of %.2fs\n"
      o.Sizing.Flow.met_nominal o.Sizing.Flow.met_extracted
      o.Sizing.Flow.evaluations
      (100.0 *. Sizing.Flow.extraction_fraction o)
      o.Sizing.Flow.seconds;
    o
  in
  let blind = run Sizing.Flow.Electrical_only "electrical-only sizing" in
  let aware = run Sizing.Flow.Layout_aware "layout-aware sizing" in
  Printf.printf
    "\nconclusion: blind sizing met its specs on paper (%b) but not after \
     extraction (%b);\n\
     the layout-aware loop holds them with parasitics included (%b) on a \
     layout %.1fx smaller.\n"
    blind.Sizing.Flow.met_nominal blind.Sizing.Flow.met_extracted
    aware.Sizing.Flow.met_extracted
    (blind.Sizing.Flow.layout.Sizing.Template.area_um2
    /. aware.Sizing.Flow.layout.Sizing.Template.area_um2)
