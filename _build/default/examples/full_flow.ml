(* The whole pipeline on the survey's Fig. 2 design: HB*-tree placement
   with guard-ring halos, guard-ring generation for the proximity
   group, maze routing with mirrored differential nets, and a combined
   SVG.

     dune exec examples/full_flow.exe
*)

let () =
  let b = Netlist.Benchmarks.fig2_design () in
  let circuit = b.Netlist.Benchmarks.circuit in
  let hierarchy = b.Netlist.Benchmarks.hierarchy in
  let rng = Prelude.Rng.create 12 in

  (* 1. place, reserving room around the proximity group *)
  let halo = 35 in
  let out = Bstar.Hbstar.place ~halo ~rng circuit hierarchy in
  let placement = Placer.Placement.make circuit out.Bstar.Hbstar.placed in
  Printf.printf "placed: area %d, HPWL %.0f\n" out.Bstar.Hbstar.area
    out.Bstar.Hbstar.hpwl;

  (* 2. guard rings around proximity groups *)
  let rings =
    Placer.Finishing.guard_rings ~clearance:8 ~thickness:16 placement hierarchy
  in
  List.iter
    (fun r ->
      Printf.printf "guard ring %s: %d segments, clear of other cells %b, \
                     sealed %b\n"
        r.Placer.Finishing.node
        (List.length r.Placer.Finishing.segments)
        r.Placer.Finishing.clear r.Placer.Finishing.sealed)
    rings;

  (* 3. route, mirroring the differential nets *)
  let groups = Constraints.Symmetry_group.of_hierarchy hierarchy in
  let pitch = 20 and margin = 4 in
  let result = Route.Router.route_all ~pitch ~margin ~symmetric:groups placement in
  Printf.printf "routing: %d routed, %d failed, %d mirrored pairs, \
                 wirelength %d tracks\n"
    (List.length result.Route.Router.routed)
    (List.length result.Route.Router.failed)
    (List.length result.Route.Router.mirrored_pairs)
    result.Route.Router.wirelength;

  (* 4. one SVG with everything *)
  let wires =
    List.map
      (fun r ->
        List.map
          (fun (c, row) -> ((c - margin) * pitch, (row - margin) * pitch))
          r.Route.Router.points)
      result.Route.Router.routed
  in
  let ring_rects =
    List.concat_map (fun r -> r.Placer.Finishing.segments) rings
  in
  Placer.Plot.write_svg_full ~path:"full_flow.svg" ~rings:ring_rects ~wires
    placement;
  print_endline "wrote full_flow.svg (cells + guard rings + routes)"
