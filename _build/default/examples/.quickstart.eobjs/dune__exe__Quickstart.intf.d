examples/quickstart.mli:
