examples/full_flow.ml: Bstar Constraints List Netlist Placer Prelude Printf Route
