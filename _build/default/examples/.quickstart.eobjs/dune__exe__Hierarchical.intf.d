examples/hierarchical.mli:
