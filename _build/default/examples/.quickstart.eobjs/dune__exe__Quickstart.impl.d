examples/quickstart.ml: Constraints Format List Netlist Placer Prelude Printf Result
