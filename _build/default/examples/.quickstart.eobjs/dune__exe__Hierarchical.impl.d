examples/hierarchical.ml: Bstar Constraints Format List Netlist Placer Prelude Printf Result
