examples/miller.mli:
