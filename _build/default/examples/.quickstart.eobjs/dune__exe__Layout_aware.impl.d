examples/layout_aware.ml: Format List Prelude Printf Sizing
