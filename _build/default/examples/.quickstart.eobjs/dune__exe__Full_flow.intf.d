examples/full_flow.mli:
