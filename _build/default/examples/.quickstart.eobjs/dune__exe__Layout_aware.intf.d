examples/layout_aware.mli:
