examples/deterministic.mli:
