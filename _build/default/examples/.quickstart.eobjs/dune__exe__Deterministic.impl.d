examples/deterministic.ml: Array Format List Netlist Placer Printf Shapefn String Sys
