examples/miller.ml: Bstar Constraints Format List Netlist Placer Prelude Printf Result Shapefn
