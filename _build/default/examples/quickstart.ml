(* Quickstart: parse a netlist, recognize its analog structure, place
   it with symmetry constraints, and draw the result.

     dune exec examples/quickstart.exe
*)

let netlist =
  "* simple differential stage\n\
   MN1 x1 inp tail vss nmos W=20u L=0.5u M=2\n\
   MN2 x2 inn tail vss nmos W=20u L=0.5u M=2\n\
   MP3 x1 x1 vdd vdd pmos W=10u L=1u\n\
   MP4 x2 x1 vdd vdd pmos W=10u L=1u\n\
   MN5 tail bias vss vss nmos W=30u L=2u\n\
   .end\n"

let () =
  (* 1. parse *)
  let devices =
    match Netlist.Parser.parse_string netlist with
    | Ok ds -> ds
    | Error e ->
        Format.eprintf "parse error: %a@." Netlist.Parser.pp_error e;
        exit 1
  in
  let circuit = Netlist.Parser.to_circuit ~name:"diffstage" devices in
  Printf.printf "parsed %d devices, %d signal nets\n"
    (Netlist.Circuit.size circuit)
    (List.length circuit.Netlist.Circuit.nets);

  (* 2. recognize differential pairs / current mirrors *)
  let { Netlist.Recognize.structures; hierarchy } =
    Netlist.Recognize.recognize circuit
  in
  List.iter
    (fun s -> Format.printf "found %a@." Netlist.Recognize.pp_structure s)
    structures;
  Format.printf "hierarchy: %a@." Netlist.Hierarchy.pp hierarchy;

  (* 3. symmetry groups follow from the hierarchy *)
  let groups = Constraints.Symmetry_group.of_hierarchy hierarchy in
  List.iter
    (fun g -> Format.printf "symmetry group: %a@." Constraints.Symmetry_group.pp g)
    groups;

  (* 4. simulated-annealing placement over symmetric-feasible
        sequence-pairs *)
  let rng = Prelude.Rng.create 42 in
  let weights =
    { Placer.Cost.default with Placer.Cost.aspect = 0.4; target_aspect = 1.0 }
  in
  let outcome = Placer.Sa_seqpair.place ~weights ~groups ~rng circuit in
  let placement = outcome.Placer.Sa_seqpair.placement in
  Printf.printf "\nplaced: %dx%d grid units, area %d, HPWL %.0f (%d evaluations)\n"
    (Placer.Placement.width placement)
    (Placer.Placement.height placement)
    (Placer.Placement.area placement)
    (Placer.Placement.hpwl placement)
    outcome.Placer.Sa_seqpair.evaluated;

  (* 5. verify and draw *)
  (match Placer.Placement.validate placement with
  | Ok () -> print_endline "placement valid (no overlaps, all cells placed)"
  | Error m -> Printf.printf "INVALID: %s\n" m);
  List.iter
    (fun g ->
      Printf.printf "group %s symmetric: %b\n" g.Constraints.Symmetry_group.name
        (Result.is_ok
           (Constraints.Placement_check.symmetry ~group:g
              placement.Placer.Placement.placed)))
    groups;
  print_newline ();
  print_string
    (Placer.Plot.ascii ~width:60 ~labels:(Placer.Plot.device_labels placement)
       placement);
  Placer.Plot.write_svg ~path:"quickstart.svg" placement;
  print_endline "wrote quickstart.svg"
