(* Benchmark harness: regenerates every quantitative artefact of the
   survey (see DESIGN.md's experiment index).

     dune exec bench/main.exe            -- all experiments (micro/perf/qor excluded)
     dune exec bench/main.exe -- <name>  -- one experiment:
       fig1 lemma bstar-count fig7 table1 fig8 hier fig10 ablation thermal
       routing mismatch hierarchy-reduction absolute micro perf qor

   `perf --smoke` runs E17 at tiny sizes with a short timing budget and
   leaves BENCH_perf.json untouched -- a CI sanity check, not a
   measurement.

   `qor` appends run-ledger entries (QoR records) for a fixed set of
   deterministic configurations to BENCH_ledger.jsonl (override with
   ANALOG_LEDGER); `analog_place report` diffs that against the
   committed bench/qor_baseline.jsonl as the CI regression gate. *)

let section title =
  Printf.printf "\n%s\n%s\n" title (String.make (String.length title) '=')

let hr () = print_endline (String.make 72 '-')

(* ------------------------------------------------------------------ *)
(* E1: Fig. 1 -- symmetric-feasible sequence-pair example              *)

let fig1 () =
  section "E1 (Fig. 1): placement of (EBAFCDG, EBCDFAG), group {(C,D),(B,G),A,F}";
  let sp, mapping = Seqpair.Sp.of_strings ~alpha:"EBAFCDG" ~beta:"EBCDFAG" in
  let idx c = List.assoc c mapping in
  let grp =
    Constraints.Symmetry_group.make ~name:"fig1"
      ~pairs:[ (idx 'C', idx 'D'); (idx 'B', idx 'G') ]
      ~selfs:[ idx 'A'; idx 'F' ] ()
  in
  Printf.printf "property (1) satisfied: %b\n"
    (Seqpair.Symmetry.is_feasible sp grp);
  let circuit = Netlist.Benchmarks.fig1_circuit () in
  match
    Seqpair.Symmetry.pack_symmetric sp (Netlist.Circuit.dims circuit) [ grp ]
  with
  | Error msg -> Printf.printf "FAILED: %s\n" msg
  | Ok placed ->
      let p = Placer.Placement.make circuit placed in
      print_string (Placer.Plot.ascii ~width:64 p);
      let axis2 =
        Option.value ~default:0 (Seqpair.Symmetry.axis2_of placed grp)
      in
      Printf.printf
        "overlap-free: %b   exact symmetry: %b   axis at x = %.1f\n"
        (Result.is_ok (Constraints.Placement_check.overlap_free placed))
        (Result.is_ok (Constraints.Placement_check.symmetry ~group:grp placed))
        (float_of_int axis2 /. 2.0)

(* ------------------------------------------------------------------ *)
(* E2: the search-space Lemma                                          *)

let lemma () =
  section "E2 (Lemma): #symmetric-feasible sequence-pairs";
  Printf.printf "%-34s %14s %14s %7s\n" "configuration" "formula" "exhaustive"
    "match";
  hr ();
  let mk pairs selfs = Constraints.Symmetry_group.make ~pairs ~selfs () in
  let cases =
    [
      ("n=3, 1 pair", 3, [ mk [ (0, 1) ] [] ]);
      ("n=4, 1 pair + 1 self", 4, [ mk [ (0, 1) ] [ 2 ] ]);
      ("n=4, 2 pairs", 4, [ mk [ (0, 1); (2, 3) ] [] ]);
      ("n=5, two groups of one pair", 5, [ mk [ (0, 1) ] []; mk [ (2, 3) ] [] ]);
      ("n=5, 2 pairs + 1 self", 5, [ mk [ (0, 1); (2, 3) ] [ 4 ] ]);
      ("n=6, 2 pairs + 2 selfs", 6, [ mk [ (0, 1); (2, 3) ] [ 4; 5 ] ]);
    ]
  in
  List.iter
    (fun (label, n, groups) ->
      let formula = Seqpair.Symmetry.count_upper_bound ~n groups in
      let exact = Seqpair.Symmetry.count_exhaustive ~n groups in
      Printf.printf "%-34s %14d %14d %7b\n" label formula exact
        (formula = exact))
    cases;
  hr ();
  (* the survey's worked numbers for the Fig. 1 configuration *)
  let fig1_grp = mk [ (0, 1); (2, 3) ] [ 4; 5 ] in
  let bound = Seqpair.Symmetry.count_upper_bound ~n:7 [ fig1_grp ] in
  let total = 5040 * 5040 in
  Printf.printf
    "Fig. 1 configuration (n=7, p=2, s=2): formula %d of %d total\n" bound
    total;
  Printf.printf "paper: 35,280 of 25,401,600 -> %.2f%% reduction; ours: %.2f%%\n"
    99.86
    (100.0 *. (1.0 -. (float_of_int bound /. float_of_int total)));
  print_endline
    "exhaustive n=7 check (25.4M codes, ~a minute) ... running:";
  let exact7 = Seqpair.Symmetry.count_exhaustive ~n:7 [ fig1_grp ] in
  Printf.printf "exhaustive count: %d (formula %d, match %b)\n" exact7 bound
    (exact7 = bound)

(* ------------------------------------------------------------------ *)
(* E3: B*-tree search-space count (survey SIV)                         *)

let bstar_count () =
  section "E3: B*-tree placements (n! x catalan n); survey: 57,657,600 at n=8";
  Printf.printf "%3s %12s %16s %12s\n" "n" "catalan" "n!*catalan" "enumerated";
  hr ();
  for n = 1 to 8 do
    let cat = Bstar.Count.catalan n in
    let total = Bstar.Count.count_placements n in
    let enumerated =
      if n <= 5 then
        string_of_int
          (List.length (Bstar.Count.enumerate_trees (List.init n Fun.id)))
      else "-"
    in
    Printf.printf "%3d %12d %16d %12s\n" n cat total enumerated
  done;
  Printf.printf "n=8 matches the survey's 57,657,600: %b\n"
    (Bstar.Count.count_placements 8 = 57_657_600)

(* ------------------------------------------------------------------ *)
(* E4: Fig. 7 -- enhanced shape addition                               *)

let fig7 () =
  section "E4 (Fig. 7): enhanced shape addition interleaves placements";
  (* shape 1: cells A (bottom, wide) and B stacked above-left, leaving
     a valley at the top right; shape 2: C over D, C narrow. The ESF
     horizontal addition tucks shape 2's column under shape 1's
     overhang. *)
  let t1 =
    { Bstar.Tree.cell = 0; left = None; right = Some (Bstar.Tree.leaf 1) }
  in
  let s1 =
    {
      Shapefn.Shape.w = 8;
      h = 8;
      payload =
        Shapefn.Shape.Btree
          { tree = t1; dims = [ (0, (5, 8)); (1, (8, 3)) ]; rigid = [] };
    }
  in
  (* recompute the true bbox of s1 *)
  let t2 =
    { Bstar.Tree.cell = 2; left = None; right = Some (Bstar.Tree.leaf 3) }
  in
  let s2 =
    {
      Shapefn.Shape.w = 4;
      h = 9;
      payload =
        Shapefn.Shape.Btree
          { tree = t2; dims = [ (2, (3, 5)); (3, (4, 4)) ]; rigid = [] };
    }
  in
  let esf = Shapefn.Esf.esf_hadd s1 s2 in
  let rsf = Shapefn.Esf.rsf_hadd s1 s2 in
  Printf.printf "shape 1: %dx%d    shape 2: %dx%d\n" s1.Shapefn.Shape.w
    s1.Shapefn.Shape.h s2.Shapefn.Shape.w s2.Shapefn.Shape.h;
  Printf.printf "bounding-box addition: %dx%d (area %d)\n" rsf.Shapefn.Shape.w
    rsf.Shapefn.Shape.h (Shapefn.Shape.area rsf);
  Printf.printf "B*-tree addition:      %dx%d (area %d)\n" esf.Shapefn.Shape.w
    esf.Shapefn.Shape.h (Shapefn.Shape.area esf);
  Printf.printf "w_imp = %d (paper: > 0 whenever interleaving helps)\n"
    (rsf.Shapefn.Shape.w - esf.Shapefn.Shape.w);
  let circuit =
    Netlist.Circuit.make ~name:"fig7"
      ~modules:
        [
          Netlist.Circuit.block ~name:"A" ~w:5 ~h:8;
          Netlist.Circuit.block ~name:"B" ~w:8 ~h:3;
          Netlist.Circuit.block ~name:"C" ~w:3 ~h:5;
          Netlist.Circuit.block ~name:"D" ~w:4 ~h:4;
        ]
      ~nets:[]
  in
  print_string
    (Placer.Plot.ascii ~width:40
       (Placer.Placement.make circuit (Shapefn.Shape.realize esf)))

(* ------------------------------------------------------------------ *)
(* E5: Table I                                                         *)

let table1 () =
  section "E5 (Table I): ESF vs RSF on the six-circuit suite";
  Printf.printf "%-14s %5s | %10s %8s | %10s %8s | %9s\n" "circuit" "#mods"
    "ESF area" "time" "RSF area" "time" "improve";
  hr ();
  let improvements = ref [] and ratios = ref [] in
  List.iter
    (fun (b : Netlist.Benchmarks.bench) ->
      let esf =
        Shapefn.Combine.place ~mode:Shapefn.Combine.Esf b.circuit b.hierarchy
      in
      let rsf =
        Shapefn.Combine.place ~mode:Shapefn.Combine.Rsf b.circuit b.hierarchy
      in
      let impr = rsf.Shapefn.Combine.area_usage -. esf.Shapefn.Combine.area_usage in
      improvements := impr :: !improvements;
      if rsf.Shapefn.Combine.seconds > 1e-6 then
        ratios :=
          (esf.Shapefn.Combine.seconds /. rsf.Shapefn.Combine.seconds)
          :: !ratios;
      Printf.printf "%-14s %5d | %9.2f%% %7.2fs | %9.2f%% %7.2fs | %8.2f%%\n"
        b.label
        (Netlist.Circuit.size b.circuit)
        esf.Shapefn.Combine.area_usage esf.Shapefn.Combine.seconds
        rsf.Shapefn.Combine.area_usage rsf.Shapefn.Combine.seconds impr)
    (Netlist.Benchmarks.table1_suite ());
  hr ();
  Printf.printf
    "average improvement %.2f%% (paper: 4.4%%); ESF/RSF time ratio %.1fx \
     (paper: ~10x)\n"
    (Prelude.Stats.mean !improvements)
    (Prelude.Stats.mean !ratios);
  print_endline
    "paper rows (area usage ESF/RSF, improvement): Miller V2 111.74/112.40 \
     0.66; Comparator V2 112.50/113.39 0.89;";
  print_endline
    "  Folded casc. 121.03/128.31 7.28; Buffer 111.39/118.12 6.73; biasynth \
     104.96/111.77 6.81; lnamixbias 107.68/111.97 4.29"

(* ------------------------------------------------------------------ *)
(* E6: Fig. 8 -- shape-function fronts of lnamixbias                   *)

let fig8 () =
  section "E6 (Fig. 8): ESF and RSF shape functions of lnamixbias";
  let b =
    List.find
      (fun (b : Netlist.Benchmarks.bench) -> b.label = "lnamixbias")
      (Netlist.Benchmarks.table1_suite ())
  in
  let esf =
    Shapefn.Combine.shape_function ~mode:Shapefn.Combine.Esf b.circuit
      b.hierarchy
  in
  let rsf =
    Shapefn.Combine.shape_function ~mode:Shapefn.Combine.Rsf b.circuit
      b.hierarchy
  in
  let pe = Shapefn.Shape_fn.points esf and pr = Shapefn.Shape_fn.points rsf in
  print_string (Placer.Plot.ascii_shape_fn [ pe; pr ]);
  print_endline "series [0]=ESF (*)   series [1]=RSF (o)";
  let dump label points =
    Printf.printf "%s front (w h):" label;
    List.iter (fun (w, h) -> Printf.printf " (%d,%d)" w h) points;
    print_newline ()
  in
  dump "ESF" pe;
  dump "RSF" pr;
  let dominated =
    List.length
      (List.filter
         (fun (w, h) -> List.exists (fun (w', h') -> w' <= w && h' <= h) pe)
         pr)
  in
  Printf.printf
    "RSF front points dominated by the ESF front: %d/%d (paper: ESF curve \
     inside the RSF curve)\n"
    dominated (List.length pr);
  let area (w, h) = w * h in
  let best pts = List.fold_left (fun acc p -> min acc (area p)) max_int pts in
  Printf.printf "min-area shape: ESF %d vs RSF %d (ESF <= RSF: %b)\n" (best pe)
    (best pr)
    (best pe <= best pr)

(* ------------------------------------------------------------------ *)
(* E7: Figs. 2/4/5 -- hierarchical placement with constraints          *)

let hier () =
  section "E7 (Figs. 2,4,5): HB*-tree placement of the hierarchical design";
  let b = Netlist.Benchmarks.fig2_design () in
  let rng = Prelude.Rng.create 2026 in
  let out = Bstar.Hbstar.place ~rng b.circuit b.hierarchy in
  Format.printf "hierarchy: %a@." Netlist.Hierarchy.pp b.hierarchy;
  let p = Placer.Placement.make b.circuit out.Bstar.Hbstar.placed in
  print_string (Placer.Plot.ascii ~width:64 p);
  Printf.printf "area %d  hpwl %.0f  dead space %d  SA rounds %d\n"
    out.Bstar.Hbstar.area out.Bstar.Hbstar.hpwl (Placer.Placement.dead_space p)
    out.Bstar.Hbstar.sa_rounds;
  let placed = out.Bstar.Hbstar.placed in
  let groups = Constraints.Symmetry_group.of_hierarchy b.hierarchy in
  List.iter
    (fun g ->
      Printf.printf "hierarchical symmetry group %s holds: %b\n"
        g.Constraints.Symmetry_group.name
        (Result.is_ok (Constraints.Placement_check.symmetry ~group:g placed)))
    groups;
  Printf.printf "common-centroid {H,I} holds: %b\n"
    (Result.is_ok
       (Constraints.Placement_check.common_centroid ~members:[ 7; 8 ] placed));
  Printf.printf "proximity {G,J,K} connected: %b\n"
    (Result.is_ok
       (Constraints.Placement_check.proximity ~members:[ 6; 9; 10 ] placed));
  (* Fig. 6 Miller op amp through recognition + HB* *)
  print_endline "";
  print_endline "Fig. 6 Miller op amp (hierarchy from structure recognition):";
  let m = Netlist.Benchmarks.miller () in
  Format.printf "  %a@." Netlist.Hierarchy.pp m.hierarchy;
  let out = Bstar.Hbstar.place ~rng m.circuit m.hierarchy in
  let p = Placer.Placement.make m.circuit out.Bstar.Hbstar.placed in
  print_string
    (Placer.Plot.ascii ~width:64 ~labels:(Placer.Plot.device_labels p) p);
  Printf.printf "area %d  hpwl %.0f  valid: %b\n" out.Bstar.Hbstar.area
    out.Bstar.Hbstar.hpwl
    (Result.is_ok (Placer.Placement.validate p));
  (* unit-decomposed common centroid of the 1:2:2 bias mirror (P5:P6:P7
     = 10u:20u:20u -> 1:2:2 fingers of 10u) *)
  print_endline "";
  print_endline
    "Unit-decomposed common centroid of the bias mirror CM2 (P5:P6:P7 = \
     1:2:2 units):";
  (match
     Bstar.Centroid.interdigitated
       ~counts:[ (5, 1); (6, 2); (7, 2) ]
       ~unit_w:112 ~unit_h:240
   with
  | Error msg -> Printf.printf "FAILED: %s\n" msg
  | Ok units ->
      let sorted =
        List.sort
          (fun (_, (a : Geometry.Rect.t)) (_, b) ->
            Int.compare a.Geometry.Rect.x b.Geometry.Rect.x)
          units
      in
      Printf.printf "pattern:%s\n"
        (String.concat ""
           (List.map (fun (o, _) -> Printf.sprintf " P%d" o) sorted));
      Printf.printf "per-device point symmetry about the common centroid: %b\n"
        (Result.is_ok
           (Constraints.Placement_check.common_centroid_units units)))

(* ------------------------------------------------------------------ *)
(* E9: Fig. 10 -- layout-aware sizing                                  *)

let spec_table specs perf_nom perf_ext =
  Printf.printf "  %-12s %12s %12s %12s\n" "spec" "bound" "nominal"
    "extracted";
  List.iter
    (fun s ->
      let v perf =
        Option.value (Sizing.Spec.value perf s.Sizing.Spec.name)
          ~default:Float.nan
      in
      let mark perf = if Sizing.Spec.satisfied s perf then "" else " <-FAIL" in
      let op, b =
        match s.Sizing.Spec.bound with
        | Sizing.Spec.At_least b -> (">=", b)
        | Sizing.Spec.At_most b -> ("<=", b)
      in
      Printf.printf "  %-12s %9s %g %12.2f%-7s %10.2f%s\n" s.Sizing.Spec.name
        op b (v perf_nom) (mark perf_nom) (v perf_ext) (mark perf_ext))
    specs

let fig10 () =
  section "E9 (Fig. 10): sizing without layout awareness vs layout-aware";
  let specs = Sizing.Flow.default_specs in
  let run mode label =
    let rng = Prelude.Rng.create 7 in
    let o = Sizing.Flow.run ~rng mode in
    Printf.printf "\n--- %s ---\n" label;
    Printf.printf "layout: %.1f x %.1f um (area %.0f um^2, aspect %.2f)\n"
      o.Sizing.Flow.layout.Sizing.Template.width_um
      o.Sizing.Flow.layout.Sizing.Template.height_um
      o.Sizing.Flow.layout.Sizing.Template.area_um2
      (Sizing.Template.aspect_ratio o.Sizing.Flow.layout);
    spec_table specs o.Sizing.Flow.perf_nominal o.Sizing.Flow.perf_extracted;
    Printf.printf
      "specs met: nominal %b / with parasitics %b;  %d evaluations in %.2fs, \
       extraction %.0f%% of runtime\n"
      o.Sizing.Flow.met_nominal o.Sizing.Flow.met_extracted
      o.Sizing.Flow.evaluations o.Sizing.Flow.seconds
      (100.0 *. Sizing.Flow.extraction_fraction o);
    o
  in
  let oe = run Sizing.Flow.Electrical_only "(a) electrical-only sizing" in
  let ol = run Sizing.Flow.Layout_aware "(b) layout-aware sizing" in
  (* the paper's Fig. 10 amplifier class: folded cascode *)
  let run_fc mode label =
    let rng = Prelude.Rng.create 7 in
    let o = Sizing.Flow.run_folded_cascode ~rng mode in
    Printf.printf "\n--- %s ---\n" label;
    Printf.printf "layout: %.1f x %.1f um (area %.0f um^2, aspect %.2f)\n"
      o.Sizing.Flow.layout.Sizing.Template.width_um
      o.Sizing.Flow.layout.Sizing.Template.height_um
      o.Sizing.Flow.layout.Sizing.Template.area_um2
      (Sizing.Template.aspect_ratio o.Sizing.Flow.layout);
    spec_table specs o.Sizing.Flow.perf_nominal o.Sizing.Flow.perf_extracted;
    Printf.printf
      "specs met: nominal %b / with parasitics %b; extraction %.0f%% of \
       runtime\n"
      o.Sizing.Flow.met_nominal o.Sizing.Flow.met_extracted
      (100.0 *. Sizing.Flow.extraction_fraction o)
  in
  run_fc Sizing.Flow.Electrical_only
    "(a') folded cascode, electrical-only";
  run_fc Sizing.Flow.Layout_aware "(b') folded cascode, layout-aware";
  hr ();
  Printf.printf
    "paper Fig. 10: (a) 195.8 x 358.8 um, specs unfulfilled with parasitics; \
     (b) 189.6 x 193.05 um, all met.\n";
  Printf.printf
    "ours:          (a) %.1f x %.1f um, met-with-parasitics=%b; (b) %.1f x \
     %.1f um, met-with-parasitics=%b\n"
    oe.Sizing.Flow.layout.Sizing.Template.width_um
    oe.Sizing.Flow.layout.Sizing.Template.height_um
    oe.Sizing.Flow.met_extracted
    ol.Sizing.Flow.layout.Sizing.Template.width_um
    ol.Sizing.Flow.layout.Sizing.Template.height_um
    ol.Sizing.Flow.met_extracted;
  Printf.printf "paper: extraction ~17%% of sizing time; ours: %.0f%%\n"
    (100.0 *. Sizing.Flow.extraction_fraction ol)

(* ------------------------------------------------------------------ *)
(* E10: representation ablation                                        *)

let ablation () =
  section
    "E10 (ablation): slicing vs sequence-pair vs B*-tree vs HB* vs \
     deterministic ESF";
  Printf.printf "%-12s %5s | %9s %9s %9s %9s %9s %9s\n" "circuit" "#mods"
    "slicing" "seq-pair" "TCG" "B*-tree" "HB*-tree" "det-ESF";
  hr ();
  let weights = Placer.Cost.area_only in
  let params n =
    {
      (Anneal.Sa.default_params ~n) with
      Anneal.Sa.max_rounds = 400;
      moves_per_round = 16 * n;
      frozen_rounds = 10;
    }
  in
  let usage circuit area =
    100.0 *. float_of_int area
    /. float_of_int (Netlist.Circuit.total_module_area circuit)
  in
  let rows = ref [] in
  List.iter
    (fun seed ->
      let b =
        Netlist.Benchmarks.synthetic
          ~label:(Printf.sprintf "synth-%d" seed)
          ~n:24 ~seed
      in
      let c = b.circuit in
      let n = Netlist.Circuit.size c in
      let rng = Prelude.Rng.create (1000 + seed) in
      let sl = Placer.Slicing.place ~weights ~params:(params n) ~rng c in
      let sp = Placer.Sa_seqpair.place ~weights ~params:(params n) ~rng c in
      let tc = Placer.Sa_tcg.place ~weights ~params:(params n) ~rng c in
      let bt = Placer.Sa_bstar.place ~weights ~params:(params n) ~rng c in
      let hb =
        Bstar.Hbstar.place
          ~weights:
            { Bstar.Hbstar.default_weights with Bstar.Hbstar.wirelength = 0.0 }
          ~params:(params n) ~rng c b.hierarchy
      in
      let det = Shapefn.Combine.place ~mode:Shapefn.Combine.Esf c b.hierarchy in
      let row =
        [
          usage c (Placer.Placement.area sl.Placer.Slicing.placement);
          usage c (Placer.Placement.area sp.Placer.Sa_seqpair.placement);
          usage c (Placer.Placement.area tc.Placer.Sa_tcg.placement);
          usage c (Placer.Placement.area bt.Placer.Sa_bstar.placement);
          usage c hb.Bstar.Hbstar.area;
          det.Shapefn.Combine.area_usage;
        ]
      in
      rows := row :: !rows;
      Printf.printf
        "%-12s %5d | %8.2f%% %8.2f%% %8.2f%% %8.2f%% %8.2f%% %8.2f%%\n"
        b.label n (List.nth row 0) (List.nth row 1) (List.nth row 2)
        (List.nth row 3) (List.nth row 4) (List.nth row 5))
    [ 1; 2; 3 ];
  hr ();
  let avg i = Prelude.Stats.mean (List.map (fun r -> List.nth r i) !rows) in
  Printf.printf
    "%-12s %5s | %8.2f%% %8.2f%% %8.2f%% %8.2f%% %8.2f%% %8.2f%%\n" "average"
    "" (avg 0) (avg 1) (avg 2) (avg 3) (avg 4) (avg 5);
  print_endline
    "survey claim: slicing limits reachable topologies and degrades density \
     vs non-slicing representations";
  print_endline
    "note: slicing/seq-pair/B*-tree ignore the analog constraints; HB*-tree \
     enforces symmetry islands,";
  print_endline
    "      centroid patterns and proximity (its area premium is the price of \
     matching), det-ESF enforces";
  print_endline
    "      them inside basic sets only."

(* ------------------------------------------------------------------ *)
(* E12: thermal mismatch, symmetric vs unconstrained placement         *)

let thermal () =
  section
    "E12 (SII thermal claim): symmetric placement cancels \
     temperature-induced mismatch";
  print_endline
    "One radiating device (self-symmetric, on the axis) + a sensitive pair \
     + filler cells; the pair's";
  print_endline
    "temperature difference under the superposed thermal field, symmetric \
     vs unconstrained annealing:";
  hr ();
  Printf.printf "%6s | %16s | %16s | %14s\n" "seed" "symmetric dT (K)"
    "unconstr. dT (K)" "field range (K)";
  hr ();
  let grp = Constraints.Symmetry_group.make ~pairs:[ (0, 1) ] ~selfs:[ 2 ] () in
  let power c = if c = 2 then 0.1 else 0.0 in
  List.iter
    (fun seed ->
      let rng = Prelude.Rng.create seed in
      let mk name w h = Netlist.Circuit.block ~name ~w ~h in
      let circuit =
        Netlist.Circuit.make ~name:"thermal"
          ~modules:
            ([ mk "a" 100 80; mk "a'" 100 80; mk "heat" 140 140 ]
            @ List.init 6 (fun i ->
                  mk
                    (Printf.sprintf "f%d" i)
                    (Prelude.Rng.int_in rng 50 160)
                    (Prelude.Rng.int_in rng 50 160)))
          ~nets:[]
      in
      let params =
        { (Anneal.Sa.default_params ~n:9) with Anneal.Sa.max_rounds = 120 }
      in
      let mismatch placed =
        let sources = Thermal.Field.sources_of_placement ~power placed in
        ( Thermal.Field.pair_mismatch sources placed (0, 1),
          Thermal.Field.worst_gradient sources placed )
      in
      let sym =
        Placer.Sa_seqpair.place ~params ~groups:[ grp ] ~rng circuit
      in
      let free = Placer.Sa_seqpair.place ~params ~rng circuit in
      let dt_sym, _ =
        mismatch sym.Placer.Sa_seqpair.placement.Placer.Placement.placed
      in
      let dt_free, range =
        mismatch free.Placer.Sa_seqpair.placement.Placer.Placement.placed
      in
      Printf.printf "%6d | %16.6f | %16.6f | %14.6f\n" seed dt_sym dt_free
        range)
    [ 1; 2; 3; 4; 5 ];
  hr ();
  print_endline
    "symmetric placements sit at exactly 0 (the pair is equidistant from \
     the on-axis radiator);";
  print_endline
    "unconstrained placements leave a finite mismatch of the same order as \
     the die's thermal gradient."

(* ------------------------------------------------------------------ *)
(* E13: symmetric routing                                              *)

let render_routes result =
  let grid = result.Route.Router.grid in
  let cols = Route.Grid.cols grid and rows = Route.Grid.rows grid in
  let canvas = Array.make_matrix rows cols '.' in
  List.iteri
    (fun i r ->
      let ch = Char.chr (Char.code 'a' + (i mod 26)) in
      List.iter
        (fun (c, row) ->
          if c >= 0 && c < cols && row >= 0 && row < rows then
            canvas.(row).(c) <- ch)
        r.Route.Router.points)
    result.Route.Router.routed;
  let buf = Buffer.create (rows * (cols + 1)) in
  for row = rows - 1 downto 0 do
    Buffer.add_string buf (String.init cols (fun c -> canvas.(row).(c)));
    Buffer.add_char buf '\n'
  done;
  Buffer.contents buf

let routing () =
  section
    "E13 (SII: 'symmetric placement (and routing, as well)'): mirrored \
     differential routing";
  let circuit =
    Netlist.Circuit.make ~name:"dp"
      ~modules:
        [
          Netlist.Circuit.block ~name:"Ml" ~w:120 ~h:100;
          Netlist.Circuit.block ~name:"Mr" ~w:120 ~h:100;
          Netlist.Circuit.block ~name:"Mtail" ~w:140 ~h:100;
          Netlist.Circuit.block ~name:"Ll" ~w:80 ~h:80;
          Netlist.Circuit.block ~name:"Lr" ~w:80 ~h:80;
        ]
      ~nets:
        [
          Netlist.Net.make ~name:"outl" ~pins:[ 0; 3 ] ();
          Netlist.Net.make ~name:"outr" ~pins:[ 1; 4 ] ();
        ]
  in
  let grp =
    Constraints.Symmetry_group.make
      ~pairs:[ (0, 1); (3, 4) ]
      ~selfs:[ 2 ] ()
  in
  let rng = Prelude.Rng.create 3 in
  let out = Placer.Sa_seqpair.place ~groups:[ grp ] ~rng circuit in
  let placement = out.Placer.Sa_seqpair.placement in
  let result = Route.Router.route_all ~pitch:20 ~symmetric:[ grp ] placement in
  Printf.printf
    "nets routed %d, failed %d, mirrored pairs %d, wirelength %d tracks, \
     grid occupancy %.1f%%\n"
    (List.length result.Route.Router.routed)
    (List.length result.Route.Router.failed)
    (List.length result.Route.Router.mirrored_pairs)
    result.Route.Router.wirelength
    (100.0 *. Route.Grid.occupancy result.Route.Router.grid);
  List.iter
    (fun (a, b) ->
      Printf.printf "  %s and %s routed as exact mirror images\n" a b)
    result.Route.Router.mirrored_pairs;
  print_string (render_routes result);
  print_endline
    "(differential halves get identical wiring, matching their \
     layout-induced parasitics)"

(* ------------------------------------------------------------------ *)
(* E14: common-centroid vs process gradients (Monte Carlo)             *)

let mismatch () =
  section
    "E14 (SIII-A claim): common-centroid placement cancels process \
     gradients";
  print_endline
    "Matched pair, 4 units each; parameter mismatch sigma over 5000 Monte \
     Carlo trials of random linear";
  print_endline
    "process gradients (slope 1%/100um class) plus local Pelgrom noise:";
  hr ();
  let rng = Prelude.Rng.create 77 in
  let unit_w = 112 and unit_h = 240 in
  let units_of placed owner =
    List.filter_map
      (fun (o, r) -> if o = owner then Some r else None)
      placed
  in
  let layouts =
    let interdigitated =
      match
        Bstar.Centroid.interdigitated
          ~counts:[ (0, 4); (1, 4) ]
          ~unit_w ~unit_h
      with
      | Ok units -> units
      | Error m -> failwith m
    in
    let strip owner k x0 =
      List.init k (fun i ->
          (owner, Geometry.Rect.make ~x:(x0 + (i * unit_w)) ~y:0 ~w:unit_w ~h:unit_h))
    in
    [
      ("interdigitated (ABBA)", interdigitated);
      ("side by side (AAAABBBB)", strip 0 4 0 @ strip 1 4 (4 * unit_w));
      ("separated (200um apart)", strip 0 4 0 @ strip 1 4 20_000);
    ]
  in
  Printf.printf "%-26s | %14s\n" "layout" "sigma(dP)";
  hr ();
  List.iter
    (fun (label, placed) ->
      let sigma =
        Mismatch.Gradient.monte_carlo rng ~trials:5000 ~slope_mag:1e-4
          ~local_sigma:2e-3
          (units_of placed 0, units_of placed 1)
      in
      Printf.printf "%-26s | %14.6f\n" label sigma)
    layouts;
  hr ();
  print_endline
    "the interdigitated layout sits at the local-noise floor (the gradient \
     term cancels exactly);";
  print_endline
    "physical separation turns the full die gradient into offset."

(* ------------------------------------------------------------------ *)
(* E15: hierarchy bounds the enumeration (SIII/SIV motivation)         *)

let hierarchy_reduction () =
  section
    "E15 (SIII/SIV): design hierarchy as a bound on the search space";
  print_endline
    "log10 of the B*-tree search space: flat (n! x catalan n over all \
     modules) vs hierarchically";
  print_endline
    "bounded (product over hierarchy nodes of each node's own space):";
  hr ();
  let log10_fact n =
    let rec go acc k = if k <= 1 then acc else go (acc +. log10 (float_of_int k)) (k - 1) in
    go 0.0 n
  in
  let log10_catalan n =
    (* log C(n) = log (2n)! - log n! - log (n+1)! *)
    log10_fact (2 * n) -. log10_fact n -. log10_fact (n + 1)
  in
  let log10_space n = log10_fact n +. log10_catalan n in
  let rec node_space tree =
    match tree with
    | Netlist.Hierarchy.Leaf _ -> 0.0
    | Netlist.Hierarchy.Node { children; _ } ->
        log10_space (List.length children)
        +. List.fold_left (fun acc c -> acc +. node_space c) 0.0 children
  in
  Printf.printf "%-14s %6s | %12s | %14s | %10s\n" "circuit" "#mods"
    "flat log10" "hierarch log10" "reduction";
  hr ();
  List.iter
    (fun (b : Netlist.Benchmarks.bench) ->
      let n = Netlist.Circuit.size b.circuit in
      let flat = log10_space n in
      let bounded = node_space b.hierarchy in
      Printf.printf "%-14s %6d | %12.1f | %14.1f | 10^%.1f\n" b.label n flat
        bounded (flat -. bounded))
    (Netlist.Benchmarks.miller () :: Netlist.Benchmarks.table1_suite ());
  hr ();
  print_endline
    "the deterministic SIV flow only ever enumerates within nodes, so the \
     bounded column is what it";
  print_endline
    "explores -- the survey's rationale for hierarchically bounded \
     enumeration (and for HB*-trees)."

(* ------------------------------------------------------------------ *)
(* E16: absolute coordinates vs topological representation (SII)       *)

let absolute () =
  section
    "E16 (SII): absolute-coordinate annealing vs topological \
     (sequence-pair) annealing";
  print_endline
    "Same engine, same evaluation budget. The absolute walk explores \
     feasible AND infeasible";
  print_endline
    "configurations (overlaps penalized, then legalized); the \
     sequence-pair walk only ever";
  print_endline "visits feasible packings:";
  hr ();
  Printf.printf "%6s | %16s %14s | %16s\n" "seed" "absolute usage"
    "raw overlap" "seq-pair usage";
  hr ();
  let abs_usages = ref [] and sp_usages = ref [] in
  List.iter
    (fun seed ->
      let b = Netlist.Benchmarks.synthetic ~label:"e16" ~n:20 ~seed in
      let c = b.Netlist.Benchmarks.circuit in
      let n = Netlist.Circuit.size c in
      let params =
        {
          (Anneal.Sa.default_params ~n) with
          Anneal.Sa.max_rounds = 300;
          moves_per_round = 12 * n;
        }
      in
      let weights = Placer.Cost.area_only in
      let usage area =
        100.0 *. float_of_int area
        /. float_of_int (Netlist.Circuit.total_module_area c)
      in
      let rng = Prelude.Rng.create (300 + seed) in
      let a = Placer.Sa_absolute.place ~weights ~params ~rng c in
      let s = Placer.Sa_seqpair.place ~weights ~params ~rng c in
      let ua = usage (Placer.Placement.area a.Placer.Sa_absolute.placement) in
      let us = usage (Placer.Placement.area s.Placer.Sa_seqpair.placement) in
      abs_usages := ua :: !abs_usages;
      sp_usages := us :: !sp_usages;
      Printf.printf "%6d | %15.2f%% %14d | %15.2f%%\n" seed ua
        a.Placer.Sa_absolute.raw_overlap us)
    [ 1; 2; 3; 4 ];
  hr ();
  Printf.printf "average: absolute %.2f%% vs sequence-pair %.2f%%\n"
    (Prelude.Stats.mean !abs_usages)
    (Prelude.Stats.mean !sp_usages);
  print_endline
    "the survey's rationale: topological codes trade fewer, \
     costlier-to-evaluate moves for a";
  print_endline
    "search space of only feasible placements -- and win at equal budgets."

(* ------------------------------------------------------------------ *)
(* E11: micro-benchmarks                                               *)

let micro () =
  section "E11: micro-benchmarks (bechamel)";
  let open Bechamel in
  let rng = Prelude.Rng.create 5 in
  let mk_sp n =
    let sp = Seqpair.Sp.random rng n in
    let d =
      Array.init n (fun _ ->
          (1 + Prelude.Rng.int rng 100, 1 + Prelude.Rng.int rng 100))
    in
    (sp, fun c -> d.(c))
  in
  let sp50, d50 = mk_sp 50 in
  let sp300, d300 = mk_sp 300 in
  let tree300 = Bstar.Tree.random rng (List.init 300 Fun.id) in
  let s1 = Shapefn.Shape.of_module ~cell:0 ~w:30 ~h:40 ~rotated:false in
  let s2 = Shapefn.Shape.of_module ~cell:1 ~w:50 ~h:20 ~rotated:false in
  let big1 =
    List.fold_left Shapefn.Esf.esf_hadd s1
      (List.init 30 (fun i ->
           Shapefn.Shape.of_module ~cell:(i + 2) ~w:(10 + i) ~h:(40 - i)
             ~rotated:false))
  in
  let tests =
    Test.make_grouped ~name:"analog-layout"
      [
        Test.make ~name:"sp-pack-naive-50" (Staged.stage (fun () ->
             ignore (Seqpair.Pack.pack sp50 d50)));
        Test.make ~name:"sp-pack-fast-50" (Staged.stage (fun () ->
             ignore (Seqpair.Pack.pack_fast sp50 d50)));
        Test.make ~name:"sp-pack-naive-300" (Staged.stage (fun () ->
             ignore (Seqpair.Pack.pack sp300 d300)));
        Test.make ~name:"sp-pack-fast-300" (Staged.stage (fun () ->
             ignore (Seqpair.Pack.pack_fast sp300 d300)));
        Test.make ~name:"bstar-pack-300" (Staged.stage (fun () ->
             ignore (Bstar.Tree.pack tree300 d300)));
        Test.make ~name:"rsf-add" (Staged.stage (fun () ->
             ignore (Shapefn.Esf.rsf_hadd s1 s2)));
        Test.make ~name:"esf-add-32cells" (Staged.stage (fun () ->
             ignore (Shapefn.Esf.esf_hadd big1 s2)));
        Test.make ~name:"miller-template+extract" (Staged.stage (fun () ->
             let d = Sizing.Design.default in
             ignore (Sizing.Extract.extract d (Sizing.Template.generate d))));
        Test.make ~name:"miller-perf-eval" (Staged.stage (fun () ->
             ignore (Sizing.Perf.evaluate Sizing.Perf.default_env
                       Sizing.Design.default)));
      ]
  in
  let cfg = Benchmark.cfg ~limit:2000 ~quota:(Time.second 0.5) () in
  let raw = Benchmark.all cfg [ Toolkit.Instance.monotonic_clock ] tests in
  let ols =
    Analyze.ols ~r_square:false ~bootstrap:0 ~predictors:[| Measure.run |]
  in
  let results = Analyze.all ols Toolkit.Instance.monotonic_clock raw in
  let rows = Hashtbl.fold (fun name o acc -> (name, o) :: acc) results [] in
  Printf.printf "%-42s %14s\n" "benchmark" "ns/run";
  hr ();
  List.iter
    (fun (name, o) ->
      match Analyze.OLS.estimates o with
      | Some [ t ] -> Printf.printf "%-42s %14.0f\n" name t
      | Some _ | None -> Printf.printf "%-42s %14s\n" name "-")
    (List.sort (fun (a, _) (b, _) -> String.compare a b) rows)

(* ------------------------------------------------------------------ *)
(* E17: evaluation-engine throughput and parallel annealing scaling    *)

(* ops/second of [f]: warm up once, then repeat until enough wall time
   has accumulated for a stable estimate. *)
let time_ops ?(budget = 0.25) f =
  f ();
  let t0 = Unix.gettimeofday () in
  let reps = ref 0 in
  let elapsed = ref 0.0 in
  while !elapsed < budget do
    f ();
    incr reps;
    elapsed := Unix.gettimeofday () -. t0
  done;
  float_of_int !reps /. !elapsed

let perf ?(smoke = false) () =
  section
    (if smoke then
       "E17 (perf, smoke): allocation-free evaluation engine sanity run"
     else "E17 (perf): allocation-free evaluation engine + parallel annealing");
  let weights = Placer.Cost.default in
  let ns = if smoke then [ 8; 16 ] else [ 20; 50; 100; 200 ] in
  let budget = if smoke then 0.02 else 0.25 in
  let time_ops f = time_ops ~budget f in
  let last = List.length ns - 1 in
  let buf = Buffer.create 4096 in
  Buffer.add_string buf "{\n";
  (* provenance header: schema version, the revision that produced the
     numbers, and when — so a committed BENCH_perf.json is
     self-describing *)
  Printf.bprintf buf "  \"schema_version\": 1,\n";
  Printf.bprintf buf "  \"git_rev\": \"%s\",\n" (Telemetry.Ledger.git_rev ());
  Printf.bprintf buf "  \"generated_at\": \"%s\",\n"
    (Telemetry.Ledger.timestamp ());
  Printf.bprintf buf "  \"domains_available\": %d,\n"
    (Domain.recommended_domain_count ());
  (* packing throughput: list evaluators vs the buffer evaluator *)
  Printf.printf "%5s | %11s %11s %11s %14s\n" "n" "pack/s" "fast/s" "veb/s"
    "fast_into/s";
  hr ();
  Buffer.add_string buf "  \"packing\": [\n";
  List.iteri
    (fun i n ->
      let rng = Prelude.Rng.create (9000 + n) in
      let sp = Seqpair.Sp.random rng n in
      let d =
        Array.init n (fun _ ->
            (1 + Prelude.Rng.int rng 100, 1 + Prelude.Rng.int rng 100))
      in
      let dims c = d.(c) in
      let scratch = Seqpair.Pack.scratch n in
      let w = Array.init n (fun c -> fst d.(c))
      and h = Array.init n (fun c -> snd d.(c))
      and x = Array.make n 0
      and y = Array.make n 0 in
      let r_pack = time_ops (fun () -> ignore (Seqpair.Pack.pack sp dims)) in
      let r_fast =
        time_ops (fun () -> ignore (Seqpair.Pack.pack_fast sp dims))
      in
      let r_veb = time_ops (fun () -> ignore (Seqpair.Pack.pack_veb sp dims)) in
      let r_into =
        time_ops (fun () -> Seqpair.Pack.pack_fast_into scratch sp ~w ~h ~x ~y)
      in
      Printf.printf "%5d | %11.0f %11.0f %11.0f %14.0f\n" n r_pack r_fast r_veb
        r_into;
      Printf.bprintf buf
        "    {\"n\": %d, \"pack_per_s\": %.0f, \"pack_fast_per_s\": %.0f, \
         \"pack_veb_per_s\": %.0f, \"pack_fast_into_per_s\": %.0f}%s\n"
        n r_pack r_fast r_veb r_into
        (if i = last then "" else ","))
    ns;
  Buffer.add_string buf "  ],\n";
  hr ();
  (* SA move throughput: the pre-arena list path (pack to a fresh list,
     build a Placement, walk the nets) against the arena *)
  Printf.printf "%5s | %14s %15s %9s\n" "n" "list moves/s" "arena moves/s"
    "speedup";
  hr ();
  (* size the telemetry on/off comparison below runs at, and the
     uninstrumented arena rate measured at that size in this same run *)
  let tn = if smoke then 16 else 100 in
  let arena_at_tn = ref 0.0 in
  Buffer.add_string buf "  \"sa_moves\": [\n";
  List.iteri
    (fun i n ->
      let b = Netlist.Benchmarks.synthetic ~label:"perf" ~n ~seed:(n + 1) in
      let c = b.Netlist.Benchmarks.circuit in
      let arena = Placer.Eval.create c in
      let rng_list = Prelude.Rng.create 42
      and rng_arena = Prelude.Rng.create 42 in
      let sp_list = ref (Seqpair.Sp.random rng_list n)
      and sp_arena = ref (Seqpair.Sp.random rng_arena n) in
      let rot = Array.make n false in
      let dims = Netlist.Circuit.dims c in
      let list_move () =
        sp_list := Seqpair.Moves.random_neighbor rng_list !sp_list;
        ignore
          (Placer.Cost.evaluate weights
             (Placer.Placement.make c (Seqpair.Pack.pack_fast !sp_list dims)))
      in
      let arena_move () =
        sp_arena := Seqpair.Moves.random_neighbor rng_arena !sp_arena;
        ignore (Placer.Eval.cost_seqpair arena weights !sp_arena ~rot)
      in
      let r_list = time_ops list_move in
      let r_arena = time_ops arena_move in
      if n = tn then arena_at_tn := r_arena;
      Printf.printf "%5d | %14.0f %15.0f %8.2fx\n" n r_list r_arena
        (r_arena /. r_list);
      Printf.bprintf buf
        "    {\"n\": %d, \"list_moves_per_s\": %.0f, \"arena_moves_per_s\": \
         %.0f, \"speedup\": %.2f}%s\n"
        n r_list r_arena (r_arena /. r_list)
        (if i = last then "" else ","))
    ns;
  Buffer.add_string buf "  ],\n";
  hr ();
  (* B*-tree SA move throughput: the pointer-tree list path (perturb a
     persistent tree, pack to a fresh list, build a Placement, walk the
     nets) against the flat-array tree + contour-scratch arena *)
  Printf.printf "%5s | %14s %15s %9s\n" "n" "list moves/s" "arena moves/s"
    "speedup";
  hr ();
  Buffer.add_string buf "  \"bstar_moves\": [\n";
  List.iteri
    (fun i n ->
      let b = Netlist.Benchmarks.synthetic ~label:"perf" ~n ~seed:(n + 2) in
      let c = b.Netlist.Benchmarks.circuit in
      let arena = Placer.Eval.create c in
      let rng_list = Prelude.Rng.create 43
      and rng_arena = Prelude.Rng.create 43 in
      let cells = List.init n Fun.id in
      let tree = ref (Bstar.Tree.random rng_list cells) in
      let flat = Bstar.Flat.of_tree (Bstar.Tree.random rng_arena cells) in
      let rot = Array.make n false in
      let dims = Netlist.Circuit.dims c in
      let list_move () =
        tree := Bstar.Perturb.random rng_list !tree;
        ignore
          (Placer.Cost.evaluate weights
             (Placer.Placement.make c (Bstar.Tree.pack !tree dims)))
      in
      let arena_move () =
        ignore (Bstar.Flat.perturb rng_arena flat);
        ignore (Placer.Eval.cost_bstar arena weights flat ~rot)
      in
      let r_list = time_ops list_move in
      let r_arena = time_ops arena_move in
      Printf.printf "%5d | %14.0f %15.0f %8.2fx\n" n r_list r_arena
        (r_arena /. r_list);
      Printf.bprintf buf
        "    {\"n\": %d, \"list_moves_per_s\": %.0f, \"arena_moves_per_s\": \
         %.0f, \"speedup\": %.2f}%s\n"
        n r_list r_arena (r_arena /. r_list)
        (if i = last then "" else ","))
    ns;
  Buffer.add_string buf "  ],\n";
  hr ();
  (* telemetry overhead: the same arena SA move loop threaded through a
     no-op sink and through a live sink (counters + histograms + span
     ring).  The zero-cost-when-off claim is the no-op column staying
     within noise of the uninstrumented arena rate measured above. *)
  let b = Netlist.Benchmarks.synthetic ~label:"tel" ~n:tn ~seed:(tn + 1) in
  let c = b.Netlist.Benchmarks.circuit in
  let tel_move telemetry =
    let arena = Placer.Eval.create ~telemetry c in
    let rng = Prelude.Rng.create 44 in
    let sp = ref (Seqpair.Sp.random rng tn) in
    let rot = Array.make tn false in
    fun () ->
      sp := Seqpair.Moves.random_neighbor rng !sp;
      ignore (Placer.Eval.cost_seqpair arena weights !sp ~rot)
  in
  let r_off = time_ops (tel_move Telemetry.Sink.null) in
  let live = Telemetry.Sink.create ~trace_capacity:8192 () in
  let r_on = time_ops (tel_move live) in
  let base = if !arena_at_tn > 0.0 then !arena_at_tn else r_off in
  let off_pct = 100.0 *. (1.0 -. (r_off /. base)) in
  let on_pct = 100.0 *. (1.0 -. (r_on /. base)) in
  Printf.printf
    "telemetry (n=%d): off %.0f moves/s (%+.1f%% vs bare), on %.0f moves/s \
     (%+.1f%% vs bare)\n"
    tn r_off off_pct r_on on_pct;
  Printf.bprintf buf
    "  \"telemetry_overhead\": {\"n\": %d, \"moves_per_s_off\": %.0f, \
     \"moves_per_s_on\": %.0f, \"off_overhead_pct\": %.1f, \
     \"on_overhead_pct\": %.1f},\n"
    tn r_off r_on off_pct on_pct;
  (* per-move latency quantiles: time small batches of arena moves and
     report type-7 percentiles of the per-move cost via Stats.quantile *)
  let batches = if smoke then 40 else 200 in
  let per_batch = 50 in
  let lat_move = tel_move Telemetry.Sink.null in
  let samples =
    List.init batches (fun _ ->
        let t0 = Unix.gettimeofday () in
        for _ = 1 to per_batch do
          lat_move ()
        done;
        (Unix.gettimeofday () -. t0) /. float_of_int per_batch *. 1e6)
  in
  let q p = Prelude.Stats.quantile samples p in
  Printf.printf
    "sa move latency (n=%d): p50 %.2fus  p90 %.2fus  p99 %.2fus\n" tn (q 0.5)
    (q 0.9) (q 0.99);
  Printf.bprintf buf
    "  \"sa_move_latency_us\": {\"n\": %d, \"p50\": %.3f, \"p90\": %.3f, \
     \"p99\": %.3f},\n"
    tn (q 0.5) (q 0.9) (q 0.99);
  hr ();
  (* routability estimate overhead: the same arena SA move loop with
     the RUDY congestion estimator folded into the cost (non-zero
     routability weight) against the plain three-term cost. The
     routed-query budget is 2x the plain query — the contract that
     lets anneals run routability-driven. *)
  let routed_weights =
    { weights with Placer.Cost.routability = 1.0 }
  in
  let est_move weights estimator =
    let arena = Placer.Eval.create ?estimator c in
    let rng = Prelude.Rng.create 45 in
    let sp = ref (Seqpair.Sp.random rng tn) in
    let rot = Array.make tn false in
    fun () ->
      sp := Seqpair.Moves.random_neighbor rng !sp;
      ignore (Placer.Eval.cost_seqpair arena weights !sp ~rot)
  in
  let r_plain = time_ops (est_move weights None) in
  let r_routed =
    time_ops (est_move routed_weights (Some (Route.Estimate.estimator c ())))
  in
  let slowdown = r_plain /. max 1.0 r_routed in
  Printf.printf
    "route estimate (n=%d): plain %.0f moves/s, routed %.0f moves/s \
     (%.2fx the plain query; budget 2x)\n"
    tn r_plain r_routed slowdown;
  Printf.bprintf buf
    "  \"route_estimate\": {\"n\": %d, \"moves_per_s_plain\": %.0f, \
     \"moves_per_s_routed\": %.0f, \"slowdown\": %.2f, \"budget\": 2.0},\n"
    tn r_plain r_routed slowdown;
  hr ();
  (* parallel multi-start on the persistent pool: 4 chains spread over
     1/2/4 domains, for both annealing-instrumented engines and both
     exchange disciplines. Deterministic rows must produce the same
     best cost at every worker count (gated in CI); async rows are the
     free-running elite-pool mode, whose speedup at 2 and 4 workers is
     the whole point of the pool — CI gates those on a multicore host.
     Each async row also reports how far its best cost landed from the
     deterministic schedule's (quality drift, not gated). *)
  let n = if smoke then 12 else 40 in
  let b = Netlist.Benchmarks.synthetic ~label:"par" ~n ~seed:5 in
  let c = b.Netlist.Benchmarks.circuit in
  let params =
    {
      (Anneal.Sa.default_params ~n) with
      Anneal.Sa.max_rounds = (if smoke then 20 else 80);
      moves_per_round = (if smoke then 50 else 200);
      frozen_rounds = 5;
    }
  in
  let place_sp ~mode ~workers rng =
    (Placer.Sa_seqpair.place ~params ~workers ~chains:4 ~mode ~rng c)
      .Placer.Sa_seqpair.cost
  and place_bstar ~mode ~workers rng =
    (Placer.Sa_bstar.place ~params ~workers ~chains:4 ~mode ~rng c)
      .Placer.Sa_bstar.cost
  in
  Printf.printf "%5s %-13s | %18s | %15s | %s\n" "" "" "seconds 1/2/4w"
    "speedup 2/4w" "same cost across workers";
  hr ();
  Buffer.add_string buf "  \"parallel\": [\n";
  let engines = [ ("sp", place_sp); ("bstar", place_bstar) ] in
  let det_costs = Hashtbl.create 4 in
  List.iteri
    (fun ei (engine, place) ->
      List.iteri
        (fun mi (mode_label, mode) ->
          let run workers =
            let rng = Prelude.Rng.create 99 in
            let t0 = Unix.gettimeofday () in
            let cost = place ~mode ~workers rng in
            (Unix.gettimeofday () -. t0, cost)
          in
          let t1, c1 = run 1 in
          let t2, c2 = run 2 in
          let t4, c4 = run 4 in
          let deterministic = c1 = c2 && c2 = c4 in
          let best = min c1 (min c2 c4) in
          if mode = `Deterministic then Hashtbl.replace det_costs engine c1;
          let delta_json, delta_text =
            match (mode, Hashtbl.find_opt det_costs engine) with
            | `Async, Some det when det <> 0.0 ->
                let pct = 100.0 *. (c4 -. det) /. det in
                ( Printf.sprintf ", \"cost_delta_vs_det_pct\": %.2f" pct,
                  Printf.sprintf "  (4w cost %+.2f%% vs deterministic)" pct )
            | _ -> ("", "")
          in
          Printf.printf
            "%5s %-13s | %5.2f %5.2f %5.2fs | %6.2fx %6.2fx | %b%s\n" engine
            mode_label t1 t2 t4 (t1 /. t2) (t1 /. t4) deterministic delta_text;
          Printf.bprintf buf
            "    {\"engine\": \"%s\", \"mode\": \"%s\", \"chains\": 4, \"n\": \
             %d, \"seconds_1w\": %.3f, \"seconds_2w\": %.3f, \"seconds_4w\": \
             %.3f, \"speedup_2w\": %.2f, \"speedup_4w\": %.2f, \
             \"deterministic\": %b, \"best_cost\": %.6f%s}%s\n"
            engine mode_label n t1 t2 t4 (t1 /. t2) (t1 /. t4) deterministic
            best delta_json
            (if ei = List.length engines - 1 && mi = 1 then "" else ","))
        [ ("deterministic", `Deterministic); ("async", `Async) ])
    engines;
  Buffer.add_string buf "  ]\n";
  Printf.printf
    "note: this host reports %d core(s) to the runtime; wall-clock scaling \
     tops out there.\n"
    (Domain.recommended_domain_count ());
  Buffer.add_string buf "}\n";
  if smoke then print_endline "smoke mode: BENCH_perf.json left untouched"
  else begin
    let oc = open_out "BENCH_perf.json" in
    output_string oc (Buffer.contents buf);
    close_out oc;
    print_endline "wrote BENCH_perf.json"
  end

(* E18: append QoR ledger entries for a fixed set of deterministic
   configurations. CI runs this, then `analog_place report` against the
   committed baseline (bench/qor_baseline.jsonl); regenerating the
   baseline is the same command pointed at that file via
   ANALOG_LEDGER. Cost/HPWL/area/violations are bit-reproducible for
   fixed seeds on any machine and worker count, so the gate compares
   them across hosts; wall time rides along ungated. *)
let qor () =
  section "E18 (qor): run ledger for the regression gate";
  let path =
    match Sys.getenv_opt "ANALOG_LEDGER" with
    | Some p when String.trim p <> "" -> p
    | _ -> "BENCH_ledger.jsonl"
  in
  let run_entry ?(route = false) (b : Netlist.Benchmarks.bench) engine seed
      chains =
    let circuit = b.Netlist.Benchmarks.circuit in
    let hierarchy = b.Netlist.Benchmarks.hierarchy in
    let groups = Constraints.Symmetry_group.of_hierarchy hierarchy in
    let telemetry = Telemetry.Sink.create () in
    let rng = Prelude.Rng.create seed in
    let w0 = Unix.gettimeofday () in
    let placement, cost, sa_rounds, evaluated =
      match engine with
      | "sp" ->
          let o =
            Placer.Sa_seqpair.place ~groups ?chains ~telemetry ~rng circuit
          in
          ( o.Placer.Sa_seqpair.placement,
            o.Placer.Sa_seqpair.cost,
            o.Placer.Sa_seqpair.sa_rounds,
            o.Placer.Sa_seqpair.evaluated )
      | "bstar" ->
          let o = Placer.Sa_bstar.place ?chains ~telemetry ~rng circuit in
          ( o.Placer.Sa_bstar.placement,
            o.Placer.Sa_bstar.cost,
            o.Placer.Sa_bstar.sa_rounds,
            o.Placer.Sa_bstar.evaluated )
      | "esf" ->
          (* deterministic enumeration: the seed only labels the row *)
          let r =
            Shapefn.Combine.place ~mode:Shapefn.Combine.Esf circuit hierarchy
          in
          let placement =
            Placer.Placement.make circuit r.Shapefn.Combine.placed
          in
          (placement, Placer.Cost.evaluate Placer.Cost.default placement, 0, 0)
      | "rsf" ->
          let r =
            Shapefn.Combine.place ~mode:Shapefn.Combine.Rsf circuit hierarchy
          in
          let placement =
            Placer.Placement.make circuit r.Shapefn.Combine.placed
          in
          (placement, Placer.Cost.evaluate Placer.Cost.default placement, 0, 0)
      | "hbstar" ->
          let o = Bstar.Hbstar.place ~rng circuit hierarchy in
          let placement = Placer.Placement.make circuit o.Bstar.Hbstar.placed in
          ( placement,
            Placer.Cost.evaluate Placer.Cost.default placement,
            o.Bstar.Hbstar.sa_rounds,
            0 )
      | e -> failwith ("qor: unknown engine " ^ e)
    in
    let wall_s = Unix.gettimeofday () -. w0 in
    let move_rates =
      Telemetry.Qor.move_rates_of_counters (Telemetry.Sink.counters telemetry)
    in
    (* routed entries carry the router's QoR so the regression gate
       covers routed wirelength and overflow alongside HPWL *)
    let routed_wl, route_overflow, route_failed, route_iterations =
      if not route then (None, None, None, None)
      else
        let r = Route.Router.route_all ~symmetric:groups ~telemetry placement in
        ( Some r.Route.Router.wirelength,
          Some r.Route.Router.overflow,
          Some (List.length r.Route.Router.failed),
          Some r.Route.Router.iterations )
    in
    let q =
      Placer.Qor.extract ~groups ~hierarchy ~move_rates ?routed_wl
        ?route_overflow ?route_failed ?route_iterations ~cost ~wall_s
        ~sa_rounds ~evaluated placement
    in
    let chain_qors =
      List.filter
        (fun (cq : Telemetry.Qor.t) -> String.equal cq.Telemetry.Qor.kind "chain")
        (Telemetry.Sink.qors telemetry)
    in
    let entry =
      Telemetry.Ledger.make ~chain_qors
        ~placement:(Placer.Qor.rects placement)
        ~label:b.Netlist.Benchmarks.label
        ~netlist_hash:(Netlist.Circuit.digest circuit)
        ~engine:(if route then engine ^ "+route" else engine)
        ~seed
        ~schedule:(Anneal.Schedule.to_string Anneal.Schedule.default)
        ~workers:
          (match chains with
          | None -> 1
          | Some _ -> Anneal.Parallel.default_workers ())
        ~chains:(Option.value chains ~default:1)
        ~qor:q ()
    in
    match Telemetry.Ledger.append path entry with
    | Ok () ->
        Printf.printf "  %-24s cost %-12.6g hpwl %-8.0f area %-10d viol %d\n"
          (Telemetry.Regress.key_of entry)
          cost q.Telemetry.Qor.hpwl q.Telemetry.Qor.area
          (Telemetry.Qor.violation_total q)
    | Error msg ->
        Printf.eprintf "error: cannot write %s: %s\n" path msg;
        exit 1
  in
  let miller = Netlist.Benchmarks.miller () in
  let fig2 = Netlist.Benchmarks.fig2_design () in
  run_entry miller "sp" 1 None;
  run_entry miller "bstar" 1 None;
  run_entry fig2 "sp" 2 (Some 2);
  run_entry miller "esf" 1 None;
  run_entry miller "rsf" 1 None;
  run_entry miller "hbstar" 1 None;
  (* the routed suite: deterministic esf placements of the six Table-I
     circuits, routed to completion — the ledger entries carry
     routed_wl / route_overflow / route_failed, so `analog_place
     report` gates routed wirelength and overflow alongside HPWL *)
  let suite = Netlist.Benchmarks.table1_suite () in
  List.iter (fun b -> run_entry ~route:true b "esf" 1 None) suite;
  Printf.printf "appended %d entries to %s\n" (6 + List.length suite) path

(* ------------------------------------------------------------------ *)
(* E19: placement-as-a-service — cold-miss vs warm-hit latency and     *)
(* hit rate under a repeat-heavy workload                              *)

let service_exp ?(smoke = false) () =
  section
    (if smoke then
       "E19 (service, smoke): memoized placement cache sanity run"
     else
       "E19 (service): cold-miss vs warm-hit latency, repeat-heavy hit rate");
  let n = if smoke then 16 else 100 in
  let quick ?outline ~id ~seed src_n =
    {
      Service.Request.id;
      source = Service.Request.Synthetic { n = src_n; seed };
      outline;
      effort = Service.Fingerprint.Quick;
      seed = 0;
    }
  in
  Service.with_service (fun svc ->
      (* -- cold anneal vs warm instantiation, free outline ---------- *)
      let cold = Service.submit svc (quick ~id:"cold" ~seed:42 n) in
      let warm = Service.submit svc (quick ~id:"warm" ~seed:42 n) in
      assert (cold.Service.Request.served = "miss");
      assert (warm.Service.Request.served = "hit");
      let speedup =
        float_of_int cold.Service.Request.latency_us
        /. float_of_int (max 1 warm.Service.Request.latency_us)
      in
      Printf.printf
        "n=%d cold miss %d us (anneal), warm hit %d us (instantiate): \
         %.0fx speedup\n"
        n cold.Service.Request.latency_us warm.Service.Request.latency_us
        speedup;
      (* -- outline-varied hits: equal-or-better fit than the miss --- *)
      let ow, oh =
        match cold.Service.Request.body with
        | Ok b ->
            ( b.Service.Request.width * 6 / 5 + 1,
              b.Service.Request.height * 6 / 5 + 1 )
        | Error e -> failwith e
      in
      let o1 = Service.submit svc (quick ~id:"o1" ~seed:42 ~outline:(ow, oh) n) in
      let o2 =
        Service.submit svc
          (quick ~id:"o2" ~seed:42 ~outline:(ow + ow / 20, oh - oh / 30) n)
      in
      let fit r =
        match r.Service.Request.body with
        | Ok b -> b.Service.Request.outline_fit = Some true
        | Error _ -> false
      in
      Printf.printf
        "outline %dx%d: %s fit=%b; varied outline: %s fit=%b (%d us)\n" ow oh
        o1.Service.Request.served (fit o1) o2.Service.Request.served (fit o2)
        o2.Service.Request.latency_us;
      assert (o2.Service.Request.served = "hit");
      assert ((not (fit o1)) || fit o2);
      (* -- repeat-heavy workload ------------------------------------ *)
      let uniques = if smoke then 3 else 6 in
      let repeats = if smoke then 3 else 8 in
      let workload =
        List.concat_map
          (fun k ->
            List.init uniques (fun u ->
                let sn = n + (4 * u) in
                let outline =
                  if k mod 2 = 1 then Some (ow + (7 * k), oh + (3 * k))
                  else None
                in
                quick ?outline ~id:(Printf.sprintf "w%d-%d" k u) ~seed:7 sn))
          (List.init repeats (fun k -> k))
      in
      let t0 = Unix.gettimeofday () in
      let _ = Service.run_batch ~in_flight:4 svc workload in
      let wall = Unix.gettimeofday () -. t0 in
      let v = Service.counter_value svc in
      let hits = v "service.hits" and misses = v "service.misses" in
      let rate =
        100.0 *. float_of_int hits /. float_of_int (max 1 (hits + misses))
      in
      Printf.printf
        "workload: %d requests (%d unique keys) in %.2fs -- %d hits, %d \
         misses, %.1f%% hit rate\n"
        (List.length workload + 4)
        (misses - v "service.verify_evictions")
        wall hits misses rate;
      (* -- the service's own Prometheus rows ------------------------ *)
      String.split_on_char '\n' (Service.metrics svc)
      |> List.filter (fun l ->
             String.length l >= 15 && String.sub l 0 15 = "analog_service_")
      |> List.iter print_endline;
      if not smoke then begin
        if speedup < 50.0 then begin
          Printf.eprintf
            "FAIL: warm-hit speedup %.0fx below the 50x gate\n" speedup;
          exit 1
        end;
        Printf.printf "gate: warm-hit speedup %.0fx >= 50x  OK\n" speedup
      end)

(* ------------------------------------------------------------------ *)

(* ------------------------------------------------------------------ *)
(* E20: negotiated-congestion routing across the Table-I suite —      *)
(* routed wirelength vs HPWL, estimate vs full-route latency, and     *)
(* routability-weighted vs HPWL-only annealing                        *)

let pearson xs ys =
  let n = float_of_int (List.length xs) in
  if n < 2.0 then 0.0
  else
    let mx = Prelude.Stats.mean xs and my = Prelude.Stats.mean ys in
    let num, dx2, dy2 =
      List.fold_left2
        (fun (num, dx2, dy2) x y ->
          let dx = x -. mx and dy = y -. my in
          (num +. (dx *. dy), dx2 +. (dx *. dx), dy2 +. (dy *. dy)))
        (0.0, 0.0, 0.0) xs ys
    in
    if dx2 = 0.0 || dy2 = 0.0 then 0.0 else num /. sqrt (dx2 *. dy2)

(* The congestion estimate is ~0.2% of the cost magnitude on the
   Table-I suite; this weight makes the routability term roughly a
   tenth of the total so the anneal trades a little HPWL for spread. *)
let route_weight_for_comparison = 60.0

let route_suite ?(smoke = false) () =
  section
    (if smoke then "E20 (route, smoke): negotiated routing sanity run"
     else
       "E20 (route): negotiated routing across the Table-I suite — routed \
        wirelength vs HPWL, estimate vs full route, routability-driven \
        annealing");
  let suite = Netlist.Benchmarks.table1_suite () in
  let suite = if smoke then [ List.hd suite ] else suite in
  let buf = Buffer.create 4096 in
  Buffer.add_string buf "{\n";
  Printf.bprintf buf "  \"schema_version\": 1,\n";
  Printf.bprintf buf "  \"git_rev\": \"%s\",\n" (Telemetry.Ledger.git_rev ());
  Printf.bprintf buf "  \"generated_at\": \"%s\",\n"
    (Telemetry.Ledger.timestamp ());
  Printf.printf "%-16s | %8s %9s %8s %5s %6s | %12s %12s\n" "circuit" "hpwl"
    "routed_wl" "overflow" "fail" "iters" "route_ms" "estimate_us";
  hr ();
  let last = List.length suite - 1 in
  let hpwls = ref [] and rwls = ref [] in
  Buffer.add_string buf "  \"circuits\": [\n";
  List.iteri
    (fun i (b : Netlist.Benchmarks.bench) ->
      let circuit = b.Netlist.Benchmarks.circuit in
      let hierarchy = b.Netlist.Benchmarks.hierarchy in
      let groups = Constraints.Symmetry_group.of_hierarchy hierarchy in
      let r0 =
        Shapefn.Combine.place ~mode:Shapefn.Combine.Esf circuit hierarchy
      in
      let placement = Placer.Placement.make circuit r0.Shapefn.Combine.placed in
      let hpwl = Placer.Placement.hpwl placement in
      let t0 = Unix.gettimeofday () in
      let r = Route.Router.route_all ~symmetric:groups placement in
      let route_ms = 1000.0 *. (Unix.gettimeofday () -. t0) in
      (* the incremental estimate this full route is traded against *)
      let est = Route.Estimate.create circuit in
      let est_per_s =
        time_ops ~budget:(if smoke then 0.02 else 0.1) (fun () ->
            ignore (Route.Estimate.score_placement est placement))
      in
      let estimate_us = 1e6 /. est_per_s in
      hpwls := hpwl :: !hpwls;
      rwls := float_of_int r.Route.Router.wirelength :: !rwls;
      Printf.printf "%-16s | %8.0f %9d %8d %5d %6d | %12.1f %12.2f\n"
        b.Netlist.Benchmarks.label hpwl r.Route.Router.wirelength
        r.Route.Router.overflow
        (List.length r.Route.Router.failed)
        r.Route.Router.iterations route_ms estimate_us;
      Printf.bprintf buf
        "    {\"label\": \"%s\", \"n\": %d, \"hpwl\": %.0f, \"routed_wl\": \
         %d, \"overflow\": %d, \"failed\": %d, \"iterations\": %d, \
         \"route_ms\": %.2f, \"estimate_us\": %.2f}%s\n"
        b.Netlist.Benchmarks.label
        (Netlist.Circuit.size circuit)
        hpwl r.Route.Router.wirelength r.Route.Router.overflow
        (List.length r.Route.Router.failed)
        r.Route.Router.iterations route_ms estimate_us
        (if i = last then "" else ","))
    suite;
  Buffer.add_string buf "  ],\n";
  hr ();
  let corr = pearson !hpwls !rwls in
  Printf.printf
    "routed wirelength vs HPWL across the suite: Pearson r = %.3f\n" corr;
  Printf.bprintf buf "  \"hpwl_routed_wl_pearson\": %.4f,\n" corr;
  (* routability-driven annealing: the same sp anneal with and without
     the congestion estimate folded into the cost, both routed with
     the full negotiated router afterwards *)
  hr ();
  Printf.printf "%-16s | %10s %10s | %s\n" "circuit" "wl (hpwl)" "wl (rout)"
    "routability-weighted wins";
  hr ();
  let wins = ref 0 and total = ref 0 in
  Buffer.add_string buf "  \"anneal_comparison\": [\n";
  List.iteri
    (fun i (b : Netlist.Benchmarks.bench) ->
      let circuit = b.Netlist.Benchmarks.circuit in
      let hierarchy = b.Netlist.Benchmarks.hierarchy in
      let groups = Constraints.Symmetry_group.of_hierarchy hierarchy in
      let n = Netlist.Circuit.size circuit in
      (* per-move cost grows ~n^2, so the move budget shrinks with n
         to keep the comparison's wall-clock bounded across the suite *)
      let params =
        {
          (Anneal.Sa.default_params ~n) with
          Anneal.Sa.max_rounds =
            (if smoke then 10 else if n > 80 then 15 else if n > 50 then 30
             else 60);
          moves_per_round =
            (if smoke then 30 else if n > 80 then 60 else 120);
          frozen_rounds = 5;
        }
      in
      let routed_wl_of weights estimator seed =
        let rng = Prelude.Rng.create seed in
        let o =
          Placer.Sa_seqpair.place ~weights ~params ~groups ?estimator ~rng
            circuit
        in
        let r =
          Route.Router.route_all ~symmetric:groups
            o.Placer.Sa_seqpair.placement
        in
        r.Route.Router.wirelength
      in
      let wl_plain = routed_wl_of Placer.Cost.default None 7 in
      let wl_routed =
        routed_wl_of
          {
            Placer.Cost.default with
            Placer.Cost.routability = route_weight_for_comparison;
          }
          (Some (Route.Estimate.estimator circuit))
          7
      in
      let win = wl_routed < wl_plain in
      if win then incr wins;
      incr total;
      Printf.printf "%-16s | %10d %10d | %s\n" b.Netlist.Benchmarks.label
        wl_plain wl_routed
        (if win then "yes" else "no");
      Printf.bprintf buf
        "    {\"label\": \"%s\", \"routed_wl_hpwl_only\": %d, \
         \"routed_wl_routability\": %d, \"win\": %b}%s\n"
        b.Netlist.Benchmarks.label wl_plain wl_routed win
        (if i = last then "" else ","))
    suite;
  Buffer.add_string buf "  ],\n";
  Printf.bprintf buf "  \"routability_wins\": {\"wins\": %d, \"of\": %d}\n"
    !wins !total;
  Buffer.add_string buf "}\n";
  Printf.printf "routability-weighted anneal shortened routed wirelength on \
                 %d of %d circuits\n"
    !wins !total;
  if smoke then print_endline "smoke mode: BENCH_route.json left untouched"
  else begin
    let oc = open_out "BENCH_route.json" in
    output_string oc (Buffer.contents buf);
    close_out oc;
    print_endline "wrote BENCH_route.json"
  end

let experiments =
  [
    ("fig1", fig1);
    ("lemma", lemma);
    ("bstar-count", bstar_count);
    ("fig7", fig7);
    ("table1", table1);
    ("fig8", fig8);
    ("hier", hier);
    ("fig10", fig10);
    ("ablation", ablation);
    ("thermal", thermal);
    ("routing", routing);
    ("mismatch", mismatch);
    ("hierarchy-reduction", hierarchy_reduction);
    ("absolute", absolute);
    ("micro", micro);
    ("perf", fun () -> perf ());
    ("qor", qor);
    ("service", fun () -> service_exp ());
    ("route-suite", fun () -> route_suite ());
  ]

let () =
  let raw =
    Array.to_list Sys.argv |> List.tl
    |> List.filter (fun a -> a <> "--")
  in
  let smoke = List.mem "--smoke" raw in
  let args = List.filter (fun a -> a <> "--smoke") raw in
  let experiments =
    if smoke then
      List.map
        (fun (name, f) ->
          ( name,
            match name with
            | "perf" -> fun () -> perf ~smoke:true ()
            | "service" -> fun () -> service_exp ~smoke:true ()
            | "route-suite" -> fun () -> route_suite ~smoke:true ()
            | _ -> f ))
        experiments
    else experiments
  in
  match args with
  | [] ->
      (* micro/perf/service/route-suite take minutes and qor writes a
         ledger file; all five run only when named *)
      List.iter
        (fun (name, f) ->
          if
            name <> "micro" && name <> "perf" && name <> "qor"
            && name <> "service" && name <> "route-suite"
          then f ())
        experiments
  | names ->
      List.iter
        (fun name ->
          match List.assoc_opt name experiments with
          | Some f -> f ()
          | None ->
              Printf.eprintf "unknown experiment %s; available: %s\n" name
                (String.concat " " (List.map fst experiments));
              exit 1)
        names
