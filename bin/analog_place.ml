(* Command-line front end.

     analog_place place     -- place a netlist (or a built-in benchmark)
     analog_place size      -- layout-aware sizing of the Miller op amp
     analog_place info      -- parse + recognize only
     analog_place lint      -- static constraint/netlist diagnostics
     analog_place verify    -- re-verify recorded placements, DRC style
     analog_place dashboard -- the flight recorder: one-page HTML telemetry

   Examples:
     analog_place place --netlist opamp.cir --engine hbstar --svg out.svg
     analog_place place --bench lnamixbias --engine esf
     analog_place place --bench miller-v2 --infeasible-check --outline 10x10
     analog_place size --mode aware
     analog_place lint opamp.cir --json
     analog_place verify --ledger runs.jsonl --all --sarif verify.sarif
     analog_place dashboard runs.jsonl --out flight.html --bench miller --route
*)

open Cmdliner

let read_file path =
  let ic = open_in path in
  let len = in_channel_length ic in
  let s = really_input_string ic len in
  close_in ic;
  s

(* Everything that can go wrong between a path and a recognized bench,
   as one AL000 diagnostic: unreadable file, parse error (with its
   line), or a circuit the structure recognizer rejects (an empty
   netlist has no hierarchy root, for instance). *)
let try_load_netlist path =
  match read_file path with
  | exception Sys_error msg -> Error (Analysis.Lint.parse_failure ~file:path msg)
  | contents -> (
      match Netlist.Parser.parse_string contents with
      | Error (e : Netlist.Parser.error) ->
          Error
            (Analysis.Lint.parse_failure ~line:e.Netlist.Parser.line ~file:path
               e.Netlist.Parser.message)
      | Ok devices -> (
          let name = Filename.remove_extension (Filename.basename path) in
          let circuit = Netlist.Parser.to_circuit ~name devices in
          match Netlist.Recognize.recognize circuit with
          | exception Invalid_argument msg ->
              Error
                (Analysis.Lint.parse_failure ~file:path
                   ("structure recognition failed: " ^ msg))
          | { Netlist.Recognize.hierarchy; _ } ->
              Ok { Netlist.Benchmarks.label = name; circuit; hierarchy }))

let load_netlist path =
  match try_load_netlist path with
  | Ok b -> b
  | Error d ->
      Format.eprintf "%a@." Analysis.Diagnostic.pp d;
      exit 1

let load_bench name =
  match name with
  | "miller" -> Netlist.Benchmarks.miller ()
  | "fig2" -> Netlist.Benchmarks.fig2_design ()
  | _ -> (
      match
        List.find_opt
          (fun (b : Netlist.Benchmarks.bench) ->
            String.lowercase_ascii b.label
            = String.lowercase_ascii (String.map (function '-' -> ' ' | c -> c) name))
          (Netlist.Benchmarks.table1_suite ())
      with
      | Some b -> b
      | None ->
          Format.eprintf
            "unknown benchmark %s (try: miller fig2 \"miller-v2\" \
             \"comparator-v2\" \"folded-casc.\" buffer biasynth lnamixbias)@."
            name;
          exit 1)

(* All CLI-facing file writes go through this: I/O failures print one
   clean line and exit 2 instead of dying on a raw Sys_error. *)
let write_or_die path contents =
  match Telemetry.Export.write_file ~path contents with
  | Ok () -> ()
  | Error msg ->
      Printf.eprintf "error: cannot write %s: %s\n" path msg;
      exit 2

(* Every SARIF file ships through the emitter's own structural check
   first — a malformed report is a bug here, not data for CI. *)
let write_sarif ?uri path diags =
  let s = Analysis.Sarif.to_string ?uri diags in
  (match Analysis.Sarif.check s with
  | Ok () -> ()
  | Error e ->
      Printf.eprintf "internal error: invalid SARIF: %s\n" e;
      exit 2);
  write_or_die path s;
  Printf.printf "wrote %s\n" path

let outline_conv =
  let fail s = Error (`Msg (Printf.sprintf "bad outline %S (expected WxH)" s)) in
  let parse s =
    match String.split_on_char 'x' (String.lowercase_ascii s) with
    | [ w; h ] -> (
        match (int_of_string_opt w, int_of_string_opt h) with
        | Some w, Some h when w > 0 && h > 0 -> Ok (w, h)
        | _ -> fail s)
    | _ -> fail s
  in
  let print ppf (w, h) = Format.fprintf ppf "%dx%d" w h in
  Arg.conv (parse, print)

(* ---- place ------------------------------------------------------- *)

type engine = Sp | Bstar_flat | Tcg | Hbstar | Esf | Rsf | Slicing

let engine_name = function
  | Sp -> "sp"
  | Bstar_flat -> "bstar"
  | Tcg -> "tcg"
  | Hbstar -> "hbstar"
  | Esf -> "esf"
  | Rsf -> "rsf"
  | Slicing -> "slicing"

let engine_conv =
  let parse = function
    | "sp" | "seqpair" -> Ok Sp
    | "bstar" -> Ok Bstar_flat
    | "tcg" -> Ok Tcg
    | "hbstar" -> Ok Hbstar
    | "esf" -> Ok Esf
    | "rsf" -> Ok Rsf
    | "slicing" -> Ok Slicing
    | s -> Error (`Msg ("unknown engine " ^ s))
  in
  let print ppf e = Format.pp_print_string ppf (engine_name e) in
  Arg.conv (parse, print)

(* [do_route] comes first so the `route` subcommand is a partial
   application of the same runner the `--route` flag drives. *)
let run_place do_route netlist bench engine seed svg quiet cluster validate
    trace conv metrics workers chains async portfolio ledger infeasible_check
    outline route_weight =
  let b =
    match (netlist, bench) with
    | Some path, _ -> load_netlist path
    | None, Some name -> load_bench name
    | None, None ->
        prerr_endline "need --netlist FILE or --bench NAME";
        exit 1
  in
  let circuit = b.Netlist.Benchmarks.circuit in
  let hierarchy =
    if cluster then Netlist.Cluster.by_connectivity circuit
    else b.Netlist.Benchmarks.hierarchy
  in
  let rng = Prelude.Rng.create seed in
  (* One sink for the whole run, created only when some output wants
     it; the engines see the null sink otherwise and pay nothing. The
     ledger wants move tallies and per-chain QoR, so it counts too. *)
  let want_telemetry =
    trace <> None || conv <> None || metrics || ledger <> None
  in
  let telemetry =
    if want_telemetry then Telemetry.Sink.create ~trace_capacity:65536 ()
    else Telemetry.Sink.null
  in
  let instrumented =
    portfolio || match engine with Sp | Bstar_flat | Tcg -> true | _ -> false
  in
  if want_telemetry && not instrumented then
    Printf.eprintf
      "note: engine is not annealing-instrumented; the trace will only \
       contain the place.total span (sp and bstar carry full telemetry)\n";
  let groups = Constraints.Symmetry_group.of_hierarchy hierarchy in
  (* The prover runs before any annealing; its errors are proofs, so a
     rejected input exits 1 without burning a single SA round. The
     portfolio path runs the same prover inside race (so library users
     get it too) — here it gates every engine. *)
  if infeasible_check && not portfolio then begin
    let diags =
      Analysis.Feasibility.check ~groups ~hierarchy ?outline circuit
    in
    if diags <> [] then Format.printf "%a" Analysis.Diagnostic.pp_list diags;
    if Analysis.Diagnostic.has_errors diags then begin
      Printf.eprintf "input proven infeasible; not placing\n";
      exit 1
    end
  end;
  (* Routability-driven annealing: a non-zero --route-weight folds the
     probabilistic congestion estimate into the cost of the annealing
     engines (sp, bstar, tcg, portfolio). Each chain builds its own
     estimator instance, so parallel chains share nothing mutable. *)
  let weights =
    if route_weight > 0.0 then
      { Placer.Cost.default with Placer.Cost.routability = route_weight }
    else Placer.Cost.default
  in
  let estimator =
    if route_weight > 0.0 then Some (Route.Estimate.estimator circuit)
    else None
  in
  if
    route_weight > 0.0 && (not portfolio)
    && match engine with Sp | Bstar_flat | Tcg -> false | _ -> true
  then
    Printf.eprintf
      "note: --route-weight only drives the annealing engines (sp, bstar, \
       tcg, --portfolio); %s ignores it\n"
      (engine_name engine);
  let mode = if async then `Async else `Deterministic in
  (* --async with no explicit geometry still means the parallel path:
     default to one chain per available worker *)
  let chains =
    if async && workers = None && chains = None then
      Some (Anneal.Parallel.default_workers ())
    else chains
  in
  let t0 = Sys.time () in
  let w0 = Unix.gettimeofday () in
  let t_total = Telemetry.Sink.span_begin telemetry in
  (* Each engine reports (placed cells, SA cost if it annealed, rounds,
     evaluations) so a ledger entry can carry the real search effort. *)
  let placed, sa_cost, sa_rounds, evaluated =
    if portfolio then (
      let o =
        try
          Placer.Portfolio.race ~weights ~groups ?workers ?chains ~hierarchy
            ?validate ~feasibility_check:infeasible_check ?outline ?estimator
            ~telemetry ~rng circuit
        with Analysis.Invariant.Violation (ctx, ds) ->
          Format.eprintf "%s:@.%a" ctx Analysis.Diagnostic.pp_list ds;
          Printf.eprintf "input proven infeasible; not placing\n";
          exit 1
      in
      Printf.printf "portfolio winner: %s (%s)\n"
        (Placer.Portfolio.engine_name o.Placer.Portfolio.winner)
        (String.concat ", "
           (List.map
              (fun (e : Placer.Portfolio.entrant) ->
                Printf.sprintf "%s %.0f"
                  (Placer.Portfolio.engine_name e.Placer.Portfolio.engine)
                  e.Placer.Portfolio.cost)
              o.Placer.Portfolio.entrants));
      ( o.Placer.Portfolio.placement.Placer.Placement.placed,
        Some o.Placer.Portfolio.cost,
        List.fold_left
          (fun acc (e : Placer.Portfolio.entrant) ->
            max acc e.Placer.Portfolio.sa_rounds)
          0 o.Placer.Portfolio.entrants,
        o.Placer.Portfolio.evaluated ))
    else
      match engine with
      | Sp ->
          let o =
            Placer.Sa_seqpair.place ~weights ~groups ?validate ?workers
              ?chains ~mode ?estimator ~telemetry ~rng circuit
          in
          ( o.Placer.Sa_seqpair.placement.Placer.Placement.placed,
            Some o.Placer.Sa_seqpair.cost,
            o.Placer.Sa_seqpair.sa_rounds,
            o.Placer.Sa_seqpair.evaluated )
      | Bstar_flat ->
          let o =
            Placer.Sa_bstar.place ~weights ?validate ?workers ?chains ~mode
              ?estimator ~telemetry ~rng circuit
          in
          ( o.Placer.Sa_bstar.placement.Placer.Placement.placed,
            Some o.Placer.Sa_bstar.cost,
            o.Placer.Sa_bstar.sa_rounds,
            o.Placer.Sa_bstar.evaluated )
      | Tcg ->
          let o =
            Placer.Sa_tcg.place ~weights ?validate ?workers ?chains ~mode
              ?estimator ~telemetry ~rng circuit
          in
          ( o.Placer.Sa_tcg.placement.Placer.Placement.placed,
            Some o.Placer.Sa_tcg.cost,
            o.Placer.Sa_tcg.sa_rounds,
            o.Placer.Sa_tcg.evaluated )
      | Hbstar ->
        ((Bstar.Hbstar.place ~rng circuit hierarchy).Bstar.Hbstar.placed, None, 0, 0)
    | Esf ->
        ( (Shapefn.Combine.place ~mode:Shapefn.Combine.Esf circuit hierarchy)
            .Shapefn.Combine.placed,
          None,
          0,
          0 )
    | Rsf ->
        ( (Shapefn.Combine.place ~mode:Shapefn.Combine.Rsf circuit hierarchy)
            .Shapefn.Combine.placed,
          None,
          0,
          0 )
    | Slicing ->
        ( (Placer.Slicing.place ~rng circuit)
            .Placer.Slicing.placement.Placer.Placement.placed,
          None,
          0,
          0 )
  in
  Telemetry.Sink.span_end telemetry "place.total" t_total;
  let seconds = Sys.time () -. t0 in
  let wall_s = Unix.gettimeofday () -. w0 in
  let placement = Placer.Placement.make circuit placed in
  (match Placer.Placement.validate placement with
  | Ok () -> ()
  | Error m ->
      Printf.eprintf "internal error: invalid placement: %s\n" m;
      exit 2);
  Printf.printf
    "%s: %d modules, %dx%d grid units, area %d (usage %.2f%%), HPWL %.0f, \
     %.2fs\n"
    b.Netlist.Benchmarks.label (Netlist.Circuit.size circuit)
    (Placer.Placement.width placement)
    (Placer.Placement.height placement)
    (Placer.Placement.area placement)
    (100.0
    *. float_of_int (Placer.Placement.area placement)
    /. float_of_int (max 1 (Netlist.Circuit.total_module_area circuit)))
    (Placer.Placement.hpwl placement)
    seconds;
  List.iter
    (fun g ->
      Printf.printf "symmetry %s: %s\n" g.Constraints.Symmetry_group.name
        (match
           Constraints.Placement_check.symmetry ~group:g placed
         with
        | Ok _ -> "exact"
        | Error _ -> "not enforced by this engine"))
    groups;
  (* The routed flow: negotiated-congestion routing over the final
     placement, mirrored across the symmetry axes, power comb first. *)
  let route_result =
    if not do_route then None
    else begin
      let r0 = Unix.gettimeofday () in
      let r = Route.Router.route_all ~symmetric:groups ~telemetry placement in
      let r_s = Unix.gettimeofday () -. r0 in
      Printf.printf
        "routed %d/%d nets: wirelength %d, overflow %d, %d iterations, %d \
         mirrored pairs, %.2fs\n"
        (List.length r.Route.Router.routed)
        (List.length r.Route.Router.routed
        + List.length r.Route.Router.failed)
        r.Route.Router.wirelength r.Route.Router.overflow
        r.Route.Router.iterations
        (List.length r.Route.Router.mirrored_pairs)
        r_s;
      List.iter
        (fun (f : Route.Router.failure) ->
          Printf.printf "  failed %s (%s)\n" f.Route.Router.failed_net
            (Route.Router.reason_to_string f.Route.Router.reason))
        r.Route.Router.failed;
      List.iter
        (fun (a, b) -> Printf.printf "  mirrored %s <-> %s\n" a b)
        r.Route.Router.mirrored_pairs;
      Some r
    end
  in
  if not quiet then
    print_string
      (Placer.Plot.ascii ~width:72
         ~labels:(Placer.Plot.device_labels placement)
         placement);
  (match svg with
  | Some path ->
      (match route_result with
      | None -> write_or_die path (Placer.Plot.svg placement)
      | Some r ->
          (* grid cell -> layout coordinates (inverse of Grid.snap) *)
          let layout_of =
            List.map (fun (c, rr) ->
                ( (c - Route.Router.default_margin) * Route.Router.default_pitch,
                  (rr - Route.Router.default_margin) * Route.Router.default_pitch
                ))
          in
          let wires =
            List.map
              (fun (rt : Route.Router.route) -> layout_of rt.Route.Router.points)
              r.Route.Router.routed
          in
          let power = List.map layout_of r.Route.Router.power in
          write_or_die path (Placer.Plot.svg_full ~power ~wires placement));
      Printf.printf "wrote %s\n" path
  | None -> ());
  (match trace with
  | Some path ->
      let json = Telemetry.Export.chrome_json telemetry in
      (* the emitter self-checks: a malformed trace is a bug, not data *)
      (match Telemetry.Export.check_json json with
      | Ok () -> ()
      | Error e ->
          Printf.eprintf "internal error: invalid trace JSON: %s\n" e;
          exit 2);
      write_or_die path json;
      Printf.printf "wrote %s (load in chrome://tracing or ui.perfetto.dev)\n"
        path
  | None -> ());
  (match conv with
  | Some path ->
      write_or_die path (Telemetry.Export.conv_csv telemetry);
      Printf.printf "wrote %s\n" path
  | None -> ());
  if metrics then print_string (Telemetry.Export.text telemetry);
  match ledger with
  | None -> ()
  | Some path ->
      let cost =
        match sa_cost with
        | Some c -> c
        | None -> Placer.Cost.evaluate Placer.Cost.default placement
      in
      let move_rates =
        Telemetry.Qor.move_rates_of_counters (Telemetry.Sink.counters telemetry)
      in
      let routed_wl, route_overflow, route_failed, route_iterations =
        match route_result with
        | None -> (None, None, None, None)
        | Some r ->
            ( Some r.Route.Router.wirelength,
              Some r.Route.Router.overflow,
              Some (List.length r.Route.Router.failed),
              Some r.Route.Router.iterations )
      in
      let qor =
        Placer.Qor.extract ~groups ~hierarchy ~move_rates ?routed_wl
          ?route_overflow ?route_failed ?route_iterations ~cost ~wall_s
          ~sa_rounds ~evaluated placement
      in
      let chain_qors =
        List.filter
          (fun (q : Telemetry.Qor.t) -> String.equal q.Telemetry.Qor.kind "chain")
          (Telemetry.Sink.qors telemetry)
      in
      (* Record the effective parallel geometry: the defaulting below
         mirrors Sa_seqpair.place (chains default workers and vice
         versa; no flag at all means the single-chain path) and
         Portfolio.race (chains default 1 per engine). *)
      let rec_workers, rec_chains =
        if portfolio then
          ( (match workers with
            | Some w -> w
            | None -> Anneal.Parallel.default_workers ()),
            Option.value chains ~default:1 )
        else
          match (workers, chains) with
          | None, None -> (1, 1)
          | Some w, None -> (w, w)
          | None, Some c -> (Anneal.Parallel.default_workers (), c)
          | Some w, Some c -> (w, c)
      in
      let entry =
        Telemetry.Ledger.make ~chain_qors
          ~placement:(Placer.Qor.rects placement)
          ~label:b.Netlist.Benchmarks.label
          ~netlist_hash:(Netlist.Circuit.digest circuit)
          ~engine:(if portfolio then "portfolio" else engine_name engine)
          ~seed
          ~schedule:(Anneal.Schedule.to_string Anneal.Schedule.default)
          ~workers:rec_workers ~chains:rec_chains ~qor ()
      in
      (match Telemetry.Ledger.append path entry with
      | Ok () -> Printf.printf "appended ledger entry to %s\n" path
      | Error msg ->
          Printf.eprintf "error: cannot write %s: %s\n" path msg;
          exit 2)

(* One argument spec serves both `place` (routing behind --route) and
   `route` (routing always on) — the commands differ only in how the
   leading [do_route] parameter of [run_place] is bound. *)
let place_term ~route =
  let netlist =
    Arg.(
      value
      & opt (some string) None
      & info [ "netlist"; "n" ] ~docv:"FILE"
          ~doc:"SPICE-like netlist to place (hierarchy is auto-recognized).")
  in
  let bench =
    Arg.(
      value
      & opt (some string) None
      & info [ "bench"; "b" ] ~docv:"NAME"
          ~doc:"Built-in benchmark: miller, fig2, or a Table-I circuit.")
  in
  let engine =
    Arg.(
      value & opt engine_conv Hbstar
      & info [ "engine"; "e" ] ~docv:"ENGINE"
          ~doc:
            "Placement engine: sp (annealed symmetric-feasible \
             sequence-pair), bstar (flat B*-tree), hbstar (hierarchical \
             B*-tree with constraints), esf / rsf (deterministic shape \
             functions), slicing (baseline).")
  in
  let seed =
    Arg.(value & opt int 1 & info [ "seed" ] ~docv:"INT" ~doc:"RNG seed.")
  in
  let svg =
    Arg.(
      value
      & opt (some string) None
      & info [ "svg" ] ~docv:"FILE" ~doc:"Write the placement as SVG.")
  in
  let quiet =
    Arg.(value & flag & info [ "quiet"; "q" ] ~doc:"No ASCII plot.")
  in
  let cluster =
    Arg.(
      value & flag
      & info [ "cluster" ]
          ~doc:
            "Replace the recognized hierarchy by connectivity-based virtual \
             clustering (useful when recognition finds no structure).")
  in
  let validate =
    Arg.(
      value
      & opt (some bool) None
      & info [ "validate" ] ~docv:"BOOL"
          ~doc:
            "Run the invariant sanitizer after every SA move (sp and bstar \
             engines). Defaults to the ANALOG_VALIDATE environment switch.")
  in
  let trace =
    Arg.(
      value
      & opt (some string) None
      & info [ "trace" ] ~docv:"FILE"
          ~doc:
            "Write a Chrome trace_event JSON of the run (spans for packing, \
             cost evaluation and SA rounds, plus per-round convergence \
             counter events). Open in chrome://tracing or ui.perfetto.dev.")
  in
  let conv =
    Arg.(
      value
      & opt (some string) None
      & info [ "conv" ] ~docv:"FILE"
          ~doc:
            "Write the SA convergence curve as CSV \
             (chain,round,temperature,acceptance,best_cost).")
  in
  let metrics =
    Arg.(
      value & flag
      & info [ "metrics" ]
          ~doc:
            "Print a telemetry summary after placement: counters, latency \
             histograms and span statistics.")
  in
  let workers =
    Arg.(
      value
      & opt (some int) None
      & info [ "workers" ] ~docv:"INT"
          ~doc:
            "Worker domains for multi-start annealing (sp and bstar \
             engines). Results are identical for any value; this only \
             chooses how much hardware the same computation uses.")
  in
  let chains =
    Arg.(
      value
      & opt (some int) None
      & info [ "chains" ] ~docv:"INT"
          ~doc:
            "Independent annealing chains for multi-start (sp and bstar \
             engines); defaults to the worker count when --workers is \
             given.")
  in
  let async =
    Arg.(
      value & flag
      & info [ "async" ]
          ~doc:
            "Free-running parallel annealing (sp, bstar and tcg engines): \
             chains trade bests through a shared elite pool at their own \
             pace instead of meeting at a join barrier — the throughput \
             mode on real cores. Results depend on domain interleaving; \
             omit it for the bit-reproducible deterministic schedule. \
             Alone it implies one chain per available worker.")
  in
  let portfolio =
    Arg.(
      value & flag
      & info [ "portfolio" ]
          ~doc:
            "Race a heterogeneous portfolio instead of a single engine: \
             sequence-pair, B*-tree and TCG chains (plus the \
             deterministic shape-function enumerator on small \
             hierarchical circuits) run asynchronously under one cost \
             scale and trade solutions through the elite pool; the best \
             published placement wins. Overrides --engine and --async; \
             --chains counts chains per representation.")
  in
  let ledger =
    Arg.(
      value
      & opt (some string) None
      & info [ "ledger" ] ~docv:"FILE"
          ~doc:
            "Append a QoR ledger entry (JSONL) for this run: cost \
             breakdown, constraint violations, move statistics, \
             per-chain records and the placed rectangles. Compare runs \
             with $(b,analog_place report).")
  in
  let infeasible_check =
    Arg.(
      value & flag
      & info [ "infeasible-check" ]
          ~doc:
            "Run the constraint feasibility prover before placing: total \
             area, per-module and symmetry-pair fit, cross-group pair \
             conflicts, and basic-set packing lower bounds against \
             $(b,--outline). A proven-infeasible input exits 1 with AL20x \
             diagnostics instead of annealing to a doomed layout.")
  in
  let outline =
    Arg.(
      value
      & opt (some outline_conv) None
      & info [ "outline" ] ~docv:"WxH"
          ~doc:
            "Fixed outline in grid units (e.g. 120x90) for the feasibility \
             prover's fit obligations. Without it, only outline-independent \
             checks run.")
  in
  let do_route =
    if route then Term.const true
    else
      Arg.(
        value & flag
        & info [ "route" ]
            ~doc:
              "Route every net after placing: power comb first, then \
               negotiated rip-up-and-reroute with mirrored symmetric \
               twins. Prints routed wirelength / overflow / failures, \
               records them in the ledger, and layers the wiring into \
               --svg output.")
  in
  let route_weight =
    Arg.(
      value & opt float 0.0
      & info [ "route-weight" ] ~docv:"W"
          ~doc:
            "Fold the probabilistic congestion estimate into the annealing \
             cost with this weight (sp, bstar, tcg and --portfolio \
             engines): the anneal becomes routability-driven. 0 keeps the \
             classic three-term cost.")
  in
  Term.(
    const run_place $ do_route $ netlist $ bench $ engine $ seed $ svg $ quiet
    $ cluster $ validate $ trace $ conv $ metrics $ workers $ chains $ async
    $ portfolio $ ledger $ infeasible_check $ outline $ route_weight)

let place_cmd =
  Cmd.v (Cmd.info "place" ~doc:"Place an analog circuit") (place_term ~route:false)

let route_cmd =
  Cmd.v
    (Cmd.info "route"
       ~doc:
         "Place and route an analog circuit: placement as $(b,place), then \
          power distribution and negotiated-congestion routing with \
          mirrored symmetric nets. Same flags as $(b,place); --svg layers \
          the power comb and signal wiring over the floorplan.")
    (place_term ~route:true)

(* ---- report ------------------------------------------------------ *)

(* Rebuild a drawable placement from a ledger entry's embedded
   rectangles: one opaque block per cell, indices in rect order (which
   is cell order — Placer.Qor.rects emits them that way), so the
   violation member lists recorded at run time still index correctly. *)
let placement_of_entry (e : Telemetry.Ledger.entry) =
  if e.Telemetry.Ledger.placement = [] then None
  else
    let modules =
      List.map
        (fun (r : Telemetry.Ledger.rect) ->
          Netlist.Circuit.block ~name:r.Telemetry.Ledger.cell
            ~w:r.Telemetry.Ledger.w ~h:r.Telemetry.Ledger.h)
        e.Telemetry.Ledger.placement
    in
    let circuit =
      Netlist.Circuit.make ~name:e.Telemetry.Ledger.label ~modules ~nets:[]
    in
    let placed =
      List.mapi
        (fun i (r : Telemetry.Ledger.rect) ->
          Geometry.Transform.place ~cell:i ~x:r.Telemetry.Ledger.x
            ~y:r.Telemetry.Ledger.y ~w:r.Telemetry.Ledger.w
            ~h:r.Telemetry.Ledger.h ~orient:Geometry.Orientation.R0)
        e.Telemetry.Ledger.placement
    in
    Some (Placer.Placement.make circuit placed)

let annotated_svg (e : Telemetry.Ledger.entry) p =
  let rects = Array.of_list e.Telemetry.Ledger.placement in
  let member_rects ms =
    List.filter_map
      (fun i ->
        if i >= 0 && i < Array.length rects then
          let r = rects.(i) in
          Some
            (Geometry.Rect.make ~x:r.Telemetry.Ledger.x ~y:r.Telemetry.Ledger.y
               ~w:r.Telemetry.Ledger.w ~h:r.Telemetry.Ledger.h)
        else None)
      ms
  in
  (* every constraint group gets a hatched ring around its bounding
     box; violated groups additionally get a polyline threading their
     members so the offending cells stand out *)
  let rings =
    List.filter_map
      (fun (v : Telemetry.Qor.violation) ->
        match member_rects v.Telemetry.Qor.members with
        | [] -> None
        | rs -> Some (Geometry.Outline.bounding_box rs))
      e.Telemetry.Ledger.qor.Telemetry.Qor.violations
  in
  let wires =
    List.filter_map
      (fun (v : Telemetry.Qor.violation) ->
        if v.Telemetry.Qor.count = 0 then None
        else
          match member_rects v.Telemetry.Qor.members with
          | [] | [ _ ] -> None
          | rs ->
              Some
                (List.map
                   (fun (r : Geometry.Rect.t) ->
                     ( r.Geometry.Rect.x + (r.Geometry.Rect.w / 2),
                       r.Geometry.Rect.y + (r.Geometry.Rect.h / 2) ))
                   rs))
      e.Telemetry.Ledger.qor.Telemetry.Qor.violations
  in
  Placer.Plot.svg_full ~rings ~wires p

let sanitize_key k =
  String.map (function '/' | ' ' | '.' -> '_' | c -> c) k

let run_report ledger baseline last svg_dir cost_tol hpwl_tol area_tol json =
  let read_or_die path =
    match Telemetry.Ledger.read path with
    | Ok [] ->
        Printf.eprintf "error: %s holds no ledger entries\n" path;
        exit 2
    | Ok es -> es
    | Error msg ->
        Printf.eprintf "error: %s\n" msg;
        exit 2
  in
  let entries = read_or_die ledger in
  let entries =
    match last with
    | None -> entries
    | Some n ->
        let len = List.length entries in
        List.filteri (fun i _ -> i >= len - n) entries
  in
  let base_entries, cand_entries =
    match baseline with
    | Some bpath -> (read_or_die bpath, entries)
    | None ->
        (* trend mode on one ledger: each key's latest entry is the
           candidate, its earlier entries are the baseline *)
        let latest = Hashtbl.create 8 in
        List.iter
          (fun e -> Hashtbl.replace latest (Telemetry.Regress.key_of e) e)
          entries;
        let is_latest e =
          match Hashtbl.find_opt latest (Telemetry.Regress.key_of e) with
          | Some e' -> e' == e
          | None -> false
        in
        (List.filter (fun e -> not (is_latest e)) entries, entries)
  in
  let thresholds =
    {
      Telemetry.Regress.cost_pct = cost_tol;
      hpwl_pct = hpwl_tol;
      area_pct = area_tol;
    }
  in
  let verdict =
    Telemetry.Regress.compare_entries ~thresholds ~baseline:base_entries
      ~candidate:cand_entries ()
  in
  if json then begin
    (* machine-readable verdict, self-checked: the emitted document
       must parse back before anything downstream sees it *)
    let doc = Telemetry.Json.emit (Telemetry.Regress.to_json verdict) in
    (match Telemetry.Json.parse doc with
    | Ok _ -> ()
    | Error e ->
        Printf.eprintf "internal error: invalid report JSON: %s\n" e;
        exit 2);
    print_endline doc
  end
  else print_string (Telemetry.Regress.render verdict);
  (match svg_dir with
  | None -> ()
  | Some dir ->
      if not (Sys.file_exists dir) then
        (try Unix.mkdir dir 0o755
         with Unix.Unix_error (e, _, _) ->
           Printf.eprintf "error: cannot create %s: %s\n" dir
             (Unix.error_message e);
           exit 2);
      (* draw each key's candidate entry *)
      let latest = Hashtbl.create 8 in
      List.iter
        (fun e -> Hashtbl.replace latest (Telemetry.Regress.key_of e) e)
        cand_entries;
      Hashtbl.iter
        (fun key e ->
          match placement_of_entry e with
          | None -> ()
          | Some p ->
              let path =
                Filename.concat dir (sanitize_key key ^ ".svg")
              in
              write_or_die path (annotated_svg e p);
              Printf.printf "wrote %s\n" path)
        latest);
  exit (if Telemetry.Regress.ok verdict then 0 else 1)

let report_cmd =
  let ledger =
    Arg.(
      required
      & pos 0 (some string) None
      & info [] ~docv:"LEDGER"
          ~doc:"QoR ledger (JSONL) holding the candidate runs.")
  in
  let baseline =
    Arg.(
      value
      & opt (some string) None
      & info [ "baseline" ] ~docv:"FILE"
          ~doc:
            "Compare the ledger's latest run per configuration against \
             this baseline ledger. Without it, each configuration's \
             latest entry is compared against its own earlier history \
             (trend mode).")
  in
  let last =
    Arg.(
      value
      & opt (some int) None
      & info [ "last" ] ~docv:"N"
          ~doc:"Consider only the last N entries of LEDGER.")
  in
  let svg_dir =
    Arg.(
      value
      & opt (some string) None
      & info [ "svg-dir" ] ~docv:"DIR"
          ~doc:
            "Write one annotated SVG per compared configuration: the \
             recorded floorplan with hatched rings around every \
             constraint group and highlight polylines through violated \
             ones.")
  in
  let tol name default doc =
    Arg.(value & opt float default & info [ name ] ~docv:"PCT" ~doc)
  in
  let cost_tol = tol "cost-tol" 1.0 "Cost regression tolerance, percent." in
  let hpwl_tol = tol "hpwl-tol" 2.0 "HPWL regression tolerance, percent." in
  let area_tol = tol "area-tol" 2.0 "Area regression tolerance, percent." in
  let json =
    Arg.(
      value & flag
      & info [ "json" ]
          ~doc:
            "Emit the verdict as one machine-readable JSON object \
             (verdict, per-configuration comparisons, per-metric \
             baselines and deltas) instead of the text table. The exit \
             status gates the same way.")
  in
  Cmd.v
    (Cmd.info "report"
       ~doc:
         "Diff QoR ledgers and detect regressions (non-zero exit when a \
          gated metric regressed)")
    Term.(
      const run_report $ ledger $ baseline $ last $ svg_dir $ cost_tol
      $ hpwl_tol $ area_tol $ json)

(* ---- size -------------------------------------------------------- *)

let run_size mode seed =
  let mode =
    match mode with
    | "electrical" -> Sizing.Flow.Electrical_only
    | "aware" -> Sizing.Flow.Layout_aware
    | m ->
        Printf.eprintf "unknown mode %s (electrical|aware)\n" m;
        exit 1
  in
  let rng = Prelude.Rng.create seed in
  let o = Sizing.Flow.run ~rng mode in
  Format.printf "final sizing:@.%a@." Sizing.Design.pp o.Sizing.Flow.design;
  Printf.printf "layout %.1f x %.1f um (area %.0f um^2)\n"
    o.Sizing.Flow.layout.Sizing.Template.width_um
    o.Sizing.Flow.layout.Sizing.Template.height_um
    o.Sizing.Flow.layout.Sizing.Template.area_um2;
  List.iter
    (fun (name, nominal, met) ->
      let extracted =
        Option.value ~default:Float.nan
          (Sizing.Spec.value o.Sizing.Flow.perf_extracted name)
      in
      Printf.printf "  %-12s nominal %10.3f  extracted %10.3f %s\n" name
        nominal extracted
        (if met then "" else "FAIL"))
    (Sizing.Spec.report Sizing.Flow.default_specs o.Sizing.Flow.perf_nominal
    |> List.map (fun (n, v, _) ->
           ( n,
             v,
             Sizing.Spec.satisfied
               (List.find
                  (fun s -> s.Sizing.Spec.name = n)
                  Sizing.Flow.default_specs)
               o.Sizing.Flow.perf_extracted )));
  Printf.printf
    "specs met: nominal %b / extracted %b; %d evaluations, extraction %.0f%% \
     of %.2fs\n"
    o.Sizing.Flow.met_nominal o.Sizing.Flow.met_extracted
    o.Sizing.Flow.evaluations
    (100.0 *. Sizing.Flow.extraction_fraction o)
    o.Sizing.Flow.seconds

let size_cmd =
  let mode =
    Arg.(
      value & opt string "aware"
      & info [ "mode"; "m" ] ~docv:"MODE"
          ~doc:"Sizing mode: electrical (layout-blind) or aware.")
  in
  let seed =
    Arg.(value & opt int 1 & info [ "seed" ] ~docv:"INT" ~doc:"RNG seed.")
  in
  Cmd.v
    (Cmd.info "size" ~doc:"Layout-aware sizing of the Miller op amp")
    Term.(const run_size $ mode $ seed)

(* ---- info -------------------------------------------------------- *)

let run_info netlist =
  let b = load_netlist netlist in
  let circuit = b.Netlist.Benchmarks.circuit in
  Format.printf "%a@." Netlist.Circuit.pp circuit;
  let { Netlist.Recognize.structures; hierarchy } =
    Netlist.Recognize.recognize circuit
  in
  List.iter
    (fun s -> Format.printf "  %a@." Netlist.Recognize.pp_structure s)
    structures;
  Format.printf "hierarchy: %a@." Netlist.Hierarchy.pp hierarchy;
  List.iter
    (fun g -> Format.printf "symmetry group %a@." Constraints.Symmetry_group.pp g)
    (Constraints.Symmetry_group.of_hierarchy hierarchy)

let info_cmd =
  let netlist =
    Arg.(
      required
      & pos 0 (some string) None
      & info [] ~docv:"FILE" ~doc:"Netlist to inspect.")
  in
  Cmd.v
    (Cmd.info "info" ~doc:"Parse a netlist and report recognized structure")
    Term.(const run_info $ netlist)

(* ---- lint -------------------------------------------------------- *)

let run_lint netlist bench json sarif threshold =
  (* exit status: 0 clean, 1 lint findings, 2 the input never became a
     circuit (AL000) — so CI can tell "bad constraints" from "bad file" *)
  let label, diags, status =
    match (netlist, bench) with
    | Some path, _ -> (
        match try_load_netlist path with
        | Error d -> (path, [ d ], 2)
        | Ok b ->
            let diags =
              Analysis.Lint.all ~sf_threshold:threshold
                b.Netlist.Benchmarks.circuit b.Netlist.Benchmarks.hierarchy
            in
            ( b.Netlist.Benchmarks.label,
              diags,
              if Analysis.Diagnostic.has_errors diags then 1 else 0 ))
    | None, Some name ->
        let b = load_bench name in
        let diags =
          Analysis.Lint.all ~sf_threshold:threshold
            b.Netlist.Benchmarks.circuit b.Netlist.Benchmarks.hierarchy
        in
        ( b.Netlist.Benchmarks.label,
          diags,
          if Analysis.Diagnostic.has_errors diags then 1 else 0 )
    | None, None ->
        prerr_endline "need a netlist FILE or --bench NAME";
        exit 1
  in
  if json then print_endline (Analysis.Diagnostic.list_to_json diags)
  else begin
    Format.printf "%s: " label;
    if diags = [] then Format.printf "clean@."
    else Format.printf "@.%a" Analysis.Diagnostic.pp_list diags
  end;
  (match sarif with
  | Some path -> write_sarif ?uri:netlist path diags
  | None -> ());
  exit status

let lint_cmd =
  let netlist =
    Arg.(
      value
      & pos 0 (some string) None
      & info [] ~docv:"FILE" ~doc:"Netlist to lint.")
  in
  let bench =
    Arg.(
      value
      & opt (some string) None
      & info [ "bench"; "b" ] ~docv:"NAME"
          ~doc:"Lint a built-in benchmark instead of a file.")
  in
  let json =
    Arg.(
      value & flag
      & info [ "json" ] ~doc:"Emit diagnostics as a JSON array.")
  in
  let sarif =
    Arg.(
      value
      & opt (some string) None
      & info [ "sarif" ] ~docv:"FILE"
          ~doc:"Also write the diagnostics as a SARIF 2.1.0 report.")
  in
  let threshold =
    Arg.(
      value & opt int 1000
      & info [ "sf-threshold" ] ~docv:"INT"
          ~doc:
            "Warn (AL010) when the symmetric-feasible count bound falls \
             below this value.")
  in
  Cmd.v
    (Cmd.info "lint"
       ~doc:
         "Static constraint/netlist diagnostics (non-zero exit on errors)")
    Term.(const run_lint $ netlist $ bench $ json $ sarif $ threshold)

(* ---- verify ------------------------------------------------------ *)

let run_verify ledger last all sarif outline =
  let entries =
    match Telemetry.Ledger.read ledger with
    | Error msg ->
        Printf.eprintf "error: %s\n" msg;
        exit 2
    | Ok [] ->
        Printf.eprintf "error: %s holds no ledger entries\n" ledger;
        exit 2
    | Ok es -> es
  in
  let entries =
    if all then entries
    else
      let len = List.length entries in
      List.filteri (fun i _ -> i >= len - max 1 last) entries
  in
  let skipped = ref 0 in
  let all_diags =
    List.concat_map
      (fun (e : Telemetry.Ledger.entry) ->
        let tag =
          Printf.sprintf "%s/%s@%s" e.Telemetry.Ledger.label
            e.Telemetry.Ledger.engine e.Telemetry.Ledger.generated_at
        in
        match Analysis.Verify.entry ?outline e with
        | Error msg ->
            incr skipped;
            Printf.printf "%s: skipped (%s)\n" tag msg;
            []
        | Ok [] ->
            Printf.printf "%s: clean\n" tag;
            []
        | Ok diags ->
            Format.printf "%s:@.%a" tag Analysis.Diagnostic.pp_list diags;
            diags)
      entries
  in
  (match sarif with
  | Some path -> write_sarif ~uri:ledger path all_diags
  | None -> ());
  if !skipped = List.length entries then begin
    Printf.eprintf
      "error: no entry could be verified (none embeds placed rectangles)\n";
    exit 2
  end;
  exit (if Analysis.Diagnostic.has_errors all_diags then 1 else 0)

let verify_cmd =
  let ledger =
    Arg.(
      required
      & opt (some string) None
      & info [ "ledger" ] ~docv:"FILE"
          ~doc:
            "QoR ledger (JSONL) whose recorded placements to re-verify. \
             Each entry's rectangles and constraint obligations are \
             re-hydrated and checked from scratch.")
  in
  let last =
    Arg.(
      value & opt int 1
      & info [ "last" ] ~docv:"N"
          ~doc:"Verify the last N entries (default 1, the newest).")
  in
  let all =
    Arg.(
      value & flag
      & info [ "all" ] ~doc:"Verify every entry in the ledger.")
  in
  let sarif =
    Arg.(
      value
      & opt (some string) None
      & info [ "sarif" ] ~docv:"FILE"
          ~doc:"Write the findings as a SARIF 2.1.0 report.")
  in
  let outline =
    Arg.(
      value
      & opt (some outline_conv) None
      & info [ "outline" ] ~docv:"WxH"
          ~doc:
            "Also check every placement against this fixed outline \
             (AL213); the ledger records no outline of its own.")
  in
  Cmd.v
    (Cmd.info "verify"
       ~doc:
         "Independently re-verify recorded placements, DRC style (exit 1 \
          on findings, 2 when nothing could be checked)")
    Term.(const run_verify $ ledger $ last $ all $ sarif $ outline)

(* ---- batch / serve: placement-as-a-service ----------------------- *)

(* Shared flags of the two service front ends. *)
let service_workers =
  Arg.(
    value
    & opt (some int) None
    & info [ "workers" ] ~docv:"N"
        ~doc:
          "Domains in the shared annealing/instantiation pool (default: \
           ANALOG_WORKERS or the available cores). The pool is spawned \
           once and reused by every request.")

let service_cache_size =
  Arg.(
    value & opt int 256
    & info [ "cache-size" ] ~docv:"N"
        ~doc:
          "Capacity of the memoizing multi-placement cache (LRU beyond \
           it).")

let service_prom =
  Arg.(
    value
    & opt (some string) None
    & info [ "prom" ] ~docv:"FILE"
        ~doc:
          "Write the service's Prometheus text exposition (hit/miss/\
           instantiation counters, latency summaries) to $(docv) on \
           exit; $(b,-) for stderr.")

let emit_prom svc = function
  | None -> ()
  | Some "-" -> prerr_string (Service.metrics svc)
  | Some path ->
      let oc = open_out path in
      output_string oc (Service.metrics svc);
      close_out oc

let read_request_lines ic =
  let rec go acc n =
    match input_line ic with
    | exception End_of_file -> List.rev acc
    | line ->
        let acc =
          if String.trim line = "" then acc
          else
            match Service.Request.of_line line with
            | Ok r -> Ok r :: acc
            | Error msg -> Error (n, msg) :: acc
        in
        go acc (n + 1)
  in
  go [] 1

let run_batch input output in_flight workers cache_size quiet prom =
  let ic = if input = "-" then stdin else open_in input in
  let lines = read_request_lines ic in
  if ic != stdin then close_in ic;
  let bad =
    List.filter_map (function Error e -> Some e | Ok _ -> None) lines
  in
  List.iter
    (fun (n, msg) -> Printf.eprintf "line %d: bad request: %s\n%!" n msg)
    bad;
  let requests =
    List.filter_map (function Ok r -> Some r | Error _ -> None) lines
  in
  let oc = match output with None | Some "-" -> stdout | Some p -> open_out p in
  Service.with_service ?workers ~cache_capacity:cache_size (fun svc ->
      let t0 = Unix.gettimeofday () in
      let responses = Service.run_batch ?in_flight svc requests in
      let t1 = Unix.gettimeofday () in
      List.iter
        (fun r ->
          output_string oc (Service.Request.response_line r);
          output_char oc '\n')
        responses;
      if oc != stdout then close_out oc else flush oc;
      if not quiet then begin
        let v = Service.counter_value svc in
        Printf.eprintf
          "served %d requests in %.2fs: %d hits, %d misses, %d evictions \
           (hit rate %.1f%%)\n%!"
          (v "service.requests") (t1 -. t0) (v "service.hits")
          (v "service.misses")
          (v "service.verify_evictions")
          (let total = v "service.hits" + v "service.misses" in
           if total = 0 then 0.0
           else 100.0 *. float_of_int (v "service.hits") /. float_of_int total)
      end;
      emit_prom svc prom);
  if bad <> [] then exit 1

let batch_cmd =
  let input =
    Arg.(
      value & pos 0 string "-"
      & info [] ~docv:"REQUESTS"
          ~doc:
            "JSONL request file, one JSON object per line; $(b,-) for \
             stdin. A request names a circuit — \
             {\"bench\":\"miller\"}, {\"netlist\":\"path.cir\"} or \
             {\"synthetic\":{\"n\":100,\"seed\":3}} — plus optional \
             \"outline\":[w,h], \"effort\" (quick|standard|thorough), \
             \"seed\" and \"id\".")
  in
  let output =
    Arg.(
      value
      & opt (some string) None
      & info [ "output"; "o" ] ~docv:"FILE"
          ~doc:"Write response JSONL to $(docv) instead of stdout.")
  in
  let in_flight =
    Arg.(
      value
      & opt (some int) None
      & info [ "in-flight" ] ~docv:"N"
          ~doc:
            "Process the batch in waves of $(docv) concurrent requests \
             (default: the whole batch as one wave). Within a wave, \
             misses anneal once per unique cache key and every hit \
             instantiates in parallel on the shared pool.")
  in
  let quiet =
    Arg.(value & flag & info [ "quiet"; "q" ] ~doc:"Suppress the summary.")
  in
  Cmd.v
    (Cmd.info "batch"
       ~doc:
         "Serve a JSONL request batch through the memoizing placement \
          service (responses in request order, byte-identical results \
          for identical requests)")
    Term.(
      const run_batch $ input $ output $ in_flight $ service_workers
      $ service_cache_size $ quiet $ service_prom)

let run_serve workers cache_size prom =
  Service.with_service ?workers ~cache_capacity:cache_size (fun svc ->
      let rec loop () =
        match input_line stdin with
        | exception End_of_file -> ()
        | line when String.trim line = "" -> loop ()
        | line ->
            (match Service.Request.of_line line with
            | Error msg ->
                print_string
                  (Telemetry.Json.emit
                     (Telemetry.Json.Obj
                        [ ("error", Telemetry.Json.Str msg) ]))
            | Ok req ->
                print_string
                  (Service.Request.response_line (Service.submit svc req)));
            print_newline ();
            flush stdout;
            loop ()
      in
      loop ();
      emit_prom svc prom)

let serve_cmd =
  Cmd.v
    (Cmd.info "serve"
       ~doc:
         "Long-lived placement service on stdin/stdout: one JSONL \
          request per line in, one response per line out (same wire \
          format as $(b,batch)). The annealing pool, arena pool and \
          multi-placement cache persist across requests, so repeated \
          or outline-varied requests are served in microseconds from \
          the cache.")
    Term.(const run_serve $ service_workers $ service_cache_size $ service_prom)

(* ---- dashboard: the flight recorder ------------------------------ *)

(* The trend panels come straight from the ledger; the convergence,
   negotiation and heatmap panels need live telemetry, so an optional
   instrumented run (--bench/--netlist, --route) feeds them; the
   service panel replays a request file through the real service,
   snapshotting the counters after every request. The rendered page is
   self-checked with the hand-rolled well-formedness checker before it
   touches disk — a malformed document is a bug here, not data. *)
let run_dashboard ledger out title last netlist bench engine seed do_route
    requests =
  let entries =
    match Telemetry.Ledger.read ledger with
    | Error msg ->
        Printf.eprintf "error: %s\n" msg;
        exit 2
    | Ok [] ->
        Printf.eprintf "error: %s holds no ledger entries\n" ledger;
        exit 2
    | Ok es -> es
  in
  let entries =
    match last with
    | None -> entries
    | Some n ->
        let len = List.length entries in
        List.filteri (fun i _ -> i >= len - n) entries
  in
  let sink, route_iters, heatmaps =
    match (netlist, bench) with
    | None, None ->
        if do_route then begin
          prerr_endline "error: --route needs --bench NAME or --netlist FILE";
          exit 1
        end;
        (None, [], [])
    | _ ->
        let b =
          match (netlist, bench) with
          | Some path, _ -> load_netlist path
          | None, Some name -> load_bench name
          | None, None -> assert false
        in
        let circuit = b.Netlist.Benchmarks.circuit in
        let hierarchy = b.Netlist.Benchmarks.hierarchy in
        let groups = Constraints.Symmetry_group.of_hierarchy hierarchy in
        let rng = Prelude.Rng.create seed in
        let telemetry = Telemetry.Sink.create ~trace_capacity:65536 () in
        let placed =
          match engine with
          | Sp ->
              (Placer.Sa_seqpair.place ~groups ~telemetry ~rng circuit)
                .Placer.Sa_seqpair.placement.Placer.Placement.placed
          | Bstar_flat ->
              (Placer.Sa_bstar.place ~telemetry ~rng circuit)
                .Placer.Sa_bstar.placement.Placer.Placement.placed
          | Tcg ->
              (Placer.Sa_tcg.place ~telemetry ~rng circuit)
                .Placer.Sa_tcg.placement.Placer.Placement.placed
          | Hbstar ->
              (Bstar.Hbstar.place ~rng circuit hierarchy).Bstar.Hbstar.placed
          | Esf ->
              (Shapefn.Combine.place ~mode:Shapefn.Combine.Esf circuit
                 hierarchy)
                .Shapefn.Combine.placed
          | Rsf ->
              (Shapefn.Combine.place ~mode:Shapefn.Combine.Rsf circuit
                 hierarchy)
                .Shapefn.Combine.placed
          | Slicing ->
              (Placer.Slicing.place ~rng circuit)
                .Placer.Slicing.placement.Placer.Placement.placed
        in
        let placement = Placer.Placement.make circuit placed in
        let route_iters, heatmaps =
          if not do_route then ([], [])
          else begin
            let r =
              Route.Router.route_all ~symmetric:groups ~telemetry placement
            in
            let iters =
              List.map
                (fun (it : Route.Router.iteration) ->
                  {
                    Telemetry.Dashboard.ri_iter = it.Route.Router.it_index;
                    ri_pres_fac = it.Route.Router.it_pres_fac;
                    ri_overflow = it.Route.Router.it_overflow;
                    ri_overused = it.Route.Router.it_overused;
                    ri_ripped = it.Route.Router.it_ripped;
                    ri_pops = it.Route.Router.it_pops;
                  })
                r.Route.Router.negotiation
            in
            let s = r.Route.Router.occupancy in
            let hm =
              {
                Telemetry.Dashboard.hm_label = b.Netlist.Benchmarks.label;
                hm_cols = s.Route.Negotiate.Snapshot.cols;
                hm_rows = s.Route.Negotiate.Snapshot.rows;
                hm_capacity = s.Route.Negotiate.Snapshot.capacity;
                hm_present = s.Route.Negotiate.Snapshot.present;
                hm_history = s.Route.Negotiate.Snapshot.history;
              }
            in
            (iters, [ hm ])
          end
        in
        (Some telemetry, route_iters, heatmaps)
  in
  let service_points =
    match requests with
    | None -> []
    | Some path ->
        let ic = if path = "-" then stdin else open_in path in
        let lines = read_request_lines ic in
        if ic != stdin then close_in ic;
        List.iter
          (function
            | Error (n, msg) ->
                Printf.eprintf "line %d: bad request: %s\n%!" n msg;
                exit 1
            | Ok _ -> ())
          lines;
        let requests =
          List.filter_map (function Ok r -> Some r | Error _ -> None) lines
        in
        Service.with_service (fun svc ->
            List.map
              (fun req ->
                ignore (Service.submit svc req);
                let v = Service.counter_value svc in
                {
                  Telemetry.Dashboard.sp_requests = v "service.requests";
                  sp_hits = v "service.hits";
                  sp_misses = v "service.misses";
                  sp_evictions = v "service.verify_evictions";
                  sp_neg_hits = v "service.neg_hits";
                  sp_infeasible = v "service.infeasible";
                })
              requests)
  in
  let html =
    Telemetry.Dashboard.render ?title ~entries ?sink ~route:route_iters
      ~heatmaps ~service:service_points ()
  in
  (match Telemetry.Html.check html with
  | Ok () -> ()
  | Error e ->
      Printf.eprintf "internal error: dashboard failed HTML check: %s\n" e;
      exit 2);
  write_or_die out html;
  Printf.printf "wrote %s (%d ledger entries%s%s%s)\n" out
    (List.length entries)
    (if sink <> None then ", live run" else "")
    (if heatmaps <> [] then ", routed" else "")
    (match service_points with
    | [] -> ""
    | l -> Printf.sprintf ", %d service requests" (List.length l))

let dashboard_cmd =
  let ledger =
    Arg.(
      required
      & pos 0 (some string) None
      & info [] ~docv:"LEDGER"
          ~doc:
            "QoR ledger (JSONL) to render: every entry feeds the \
             per-configuration trend sparklines and the run table.")
  in
  let out =
    Arg.(
      value & opt string "dashboard.html"
      & info [ "out"; "o" ] ~docv:"FILE"
          ~doc:"Output path for the dashboard document.")
  in
  let title =
    Arg.(
      value
      & opt (some string) None
      & info [ "title" ] ~docv:"TEXT" ~doc:"Dashboard heading.")
  in
  let last =
    Arg.(
      value
      & opt (some int) None
      & info [ "last" ] ~docv:"N"
          ~doc:"Render only the last N entries of LEDGER.")
  in
  let netlist =
    Arg.(
      value
      & opt (some string) None
      & info [ "netlist"; "n" ] ~docv:"FILE"
          ~doc:
            "Also run a live instrumented placement of this netlist: \
             adds the SA convergence, acceptance and counter panels.")
  in
  let bench =
    Arg.(
      value
      & opt (some string) None
      & info [ "bench"; "b" ] ~docv:"NAME"
          ~doc:"Live-run a built-in benchmark instead of a netlist file.")
  in
  let engine =
    Arg.(
      value & opt engine_conv Sp
      & info [ "engine"; "e" ] ~docv:"ENGINE"
          ~doc:
            "Engine for the live run (default sp, which carries full \
             annealing telemetry).")
  in
  let seed =
    Arg.(
      value & opt int 1
      & info [ "seed" ] ~docv:"INT" ~doc:"RNG seed for the live run.")
  in
  let route =
    Arg.(
      value & flag
      & info [ "route" ]
          ~doc:
            "Route the live placement too: adds the negotiation \
             convergence panel and the occupancy / history congestion \
             heatmaps.")
  in
  let requests =
    Arg.(
      value
      & opt (some string) None
      & info [ "requests" ] ~docv:"FILE"
          ~doc:
            "Replay this JSONL request file (same wire format as \
             $(b,batch)) through the placement service and chart the \
             cache hit/miss/eviction trend per request; $(b,-) for \
             stdin.")
  in
  Cmd.v
    (Cmd.info "dashboard"
       ~doc:
         "Render the flight recorder: one self-contained HTML+SVG page \
          (no scripts, no external assets) with QoR trends from the \
          ledger, and optionally live SA convergence, route congestion \
          heatmaps and service cache telemetry. The page is checked \
          for well-formedness before it is written; a check failure \
          exits 2, so this doubles as a render gate in CI.")
    Term.(
      const run_dashboard $ ledger $ out $ title $ last $ netlist $ bench
      $ engine $ seed $ route $ requests)

let () =
  let doc = "Analog layout synthesis: topological placement and sizing" in
  exit
    (Cmd.eval
       (Cmd.group (Cmd.info "analog_place" ~version:"1.0" ~doc)
          [
            place_cmd; route_cmd; report_cmd; size_cmd; info_cmd; lint_cmd;
            verify_cmd; batch_cmd; serve_cmd; dashboard_cmd;
          ]))
